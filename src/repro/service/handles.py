"""Job handles: the common currency of the submission API.

``repro.api.submit`` (in-process) and :class:`repro.service.client.ServiceClient`
(over the socket) both hand back a :class:`JobHandle`; everything a caller
can do with a job -- poll :meth:`~JobHandle.status`, block on
:meth:`~JobHandle.result`, follow :meth:`~JobHandle.stream_progress` -- goes
through this one interface, so code written against a local handle works
unchanged against a served one.

The wire-facing :class:`JobStatus` snapshot and the progress-event dict
format are defined here because they *are* the interface: the registry
produces them, the server relays them verbatim as JSON, and the remote
handle rehydrates them -- one schema, three transports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

# Job lifecycle states (also the wire strings).
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: states a job never leaves
TERMINAL_STATES = (DONE, FAILED)

#: how a submission was satisfied: freshly computed, coalesced onto an
#: identical in-flight job, or served from the durable result cache
DEDUP_NEW = "new"
DEDUP_COALESCED = "coalesced"
DEDUP_CACHED = "cached"


class JobFailedError(RuntimeError):
    """A remote job failed; carries the server-reported error text."""


@dataclass(frozen=True)
class JobStatus:
    """Point-in-time snapshot of one job, identical locally and on the wire.

    ``completed``/``total`` count finished schemes (grid rows for scenario
    jobs); ``error`` is the stringified failure for ``state == "failed"``.
    """

    job_id: str
    kind: str
    state: str
    completed: int = 0
    total: int = 0
    error: Optional[str] = None
    dedup: str = DEDUP_NEW

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_json(self) -> dict:
        payload = {
            "job_id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "completed": self.completed,
            "total": self.total,
            "dedup": self.dedup,
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload

    @classmethod
    def from_json(cls, data: Dict) -> "JobStatus":
        return cls(
            job_id=data["job_id"],
            kind=data["kind"],
            state=data["state"],
            completed=int(data.get("completed", 0)),
            total=int(data.get("total", 0)),
            error=data.get("error"),
            dedup=data.get("dedup", DEDUP_NEW),
        )


class JobHandle:
    """What :func:`repro.api.submit` returns: a job you can await or watch.

    Concrete handles differ only in transport -- :class:`LocalJobHandle`
    reads a registry record in this process,
    :class:`~repro.service.client.RemoteJobHandle` speaks the socket
    protocol -- and both promise:

    * :meth:`status` never blocks;
    * :meth:`result` blocks until the job finishes, then returns decoded
      result objects (or raises the job's failure);
    * :meth:`stream_progress` yields progress/telemetry event dicts in
      order and ends when the job reaches a terminal state.

    Results are decoded from the job's canonical JSON payload in both
    cases, so a local result and a served result are the same bits.
    """

    job_id: str

    def status(self) -> JobStatus:
        raise NotImplementedError

    def result(self, timeout: Optional[float] = None):
        raise NotImplementedError

    def stream_progress(self) -> Iterator[dict]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"{type(self).__name__}({self.job_id})"


class LocalJobHandle(JobHandle):
    """Handle onto a job running (or finished) in this process's registry."""

    def __init__(self, record, dedup: str = DEDUP_NEW):
        self._record = record
        self.job_id = record.job_id
        self.dedup = dedup

    def status(self) -> JobStatus:
        return self._record.status(dedup=self.dedup)

    def result(self, timeout: Optional[float] = None):
        from repro.service.jobs import decode_result

        payload = self._record.wait(timeout)
        return decode_result(self._record.spec.kind, payload)

    def stream_progress(self) -> Iterator[dict]:
        return self._record.iter_events()
