"""Synchronous client for the sweep service socket protocol.

:class:`ServiceClient` speaks the JSON-lines protocol of
:mod:`repro.service.server` over plain blocking sockets -- no asyncio in
the caller's process -- and hands back
:class:`RemoteJobHandle` objects implementing the same
:class:`~repro.service.handles.JobHandle` interface as in-process
submission, decoding results through the same
:func:`~repro.service.jobs.decode_result`, so a served
:class:`~repro.metrics.traffic.TrafficReport` is bit-identical to one
computed by calling ``repro.api`` directly.

Each operation uses its own connection (the protocol is stateless between
requests), which keeps the client trivially thread-safe and lets a handle
outlive any individual socket.
"""

from __future__ import annotations

import json
import socket
from typing import Iterator, List, Optional

from repro.service.handles import JobFailedError, JobHandle, JobStatus
from repro.service.jobs import JobSpec, decode_result


class ServiceError(RuntimeError):
    """The server answered ``ok: false`` (or the connection misbehaved)."""


class ServiceClient:
    """Talk to a running ``repro-serve`` instance at ``host:port``."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: Optional[float] = 60.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _connect(self, timeout: Optional[float]):
        sock = socket.create_connection((self.host, self.port), timeout=timeout)
        return sock, sock.makefile("rwb")

    def _roundtrip(self, payload: dict, timeout: Optional[float]) -> dict:
        sock, stream = self._connect(timeout)
        try:
            stream.write(json.dumps(payload, separators=(",", ":")).encode() + b"\n")
            stream.flush()
            line = stream.readline()
        finally:
            stream.close()
            sock.close()
        if not line:
            raise ServiceError("server closed the connection mid-request")
        return self._check(json.loads(line))

    @staticmethod
    def _check(response: dict) -> dict:
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unspecified server error"))
        return response

    def _request(self, payload: dict) -> dict:
        return self._roundtrip(payload, self.timeout)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def ping(self) -> dict:
        """Liveness + schema check; raises :class:`ServiceError` if down."""
        return self._request({"op": "ping"})

    def submit(self, spec: JobSpec) -> "RemoteJobHandle":
        """Submit a spec; identical in-flight specs coalesce server-side."""
        response = self._request({"op": "submit", "spec": spec.to_json()})
        return RemoteJobHandle(
            self,
            job_id=response["job_id"],
            kind=response["kind"],
            dedup=response.get("dedup", "new"),
        )

    def status(self, job_id: str) -> JobStatus:
        response = self._request({"op": "status", "job_id": job_id})
        return JobStatus.from_json(response["status"])

    def result_payload(self, job_id: str, timeout: Optional[float] = None) -> dict:
        """The raw JSON result payload (blocks server-side until done)."""
        try:
            response = self._roundtrip(
                {"op": "result", "job_id": job_id},
                timeout if timeout is not None else self.timeout,
            )
        except ServiceError as error:
            raise JobFailedError(str(error)) from error
        return response

    def stream(self, job_id: str) -> Iterator[dict]:
        """Yield the job's event dicts; returns when the job finishes."""
        sock, stream = self._connect(self.timeout)
        try:
            stream.write(
                json.dumps({"op": "stream", "job_id": job_id}).encode() + b"\n"
            )
            stream.flush()
            while True:
                line = stream.readline()
                if not line:
                    raise ServiceError("server closed the stream early")
                response = self._check(json.loads(line))
                if response.get("end"):
                    return
                yield response["event"]
        finally:
            stream.close()
            sock.close()

    def jobs(self) -> List[JobStatus]:
        response = self._request({"op": "jobs"})
        return [JobStatus.from_json(entry) for entry in response["jobs"]]

    def telemetry(self) -> dict:
        """The server's telemetry snapshot (plain ``Telemetry.to_json``)."""
        return self._request({"op": "telemetry"})["telemetry"]

    def shutdown(self) -> None:
        """Ask the server to stop (it drains in-flight work first)."""
        self._request({"op": "shutdown"})


class RemoteJobHandle(JobHandle):
    """A :class:`JobHandle` whose job lives in a ``repro-serve`` process."""

    def __init__(self, client: ServiceClient, job_id: str, kind: str, dedup: str):
        self._client = client
        self.job_id = job_id
        self.kind = kind
        self.dedup = dedup

    def status(self) -> JobStatus:
        status = self._client.status(self.job_id)
        # the server reports per-record state; the dedup origin of *this*
        # submission is client-side knowledge
        return JobStatus(
            job_id=status.job_id,
            kind=status.kind,
            state=status.state,
            completed=status.completed,
            total=status.total,
            error=status.error,
            dedup=self.dedup,
        )

    def result(self, timeout: Optional[float] = None):
        response = self._client.result_payload(self.job_id, timeout)
        return decode_result(response["kind"], response["result"])

    def stream_progress(self) -> Iterator[dict]:
        return self._client.stream(self.job_id)
