"""The job-submission layer: one computation currency, two transports.

``repro.service`` turns every sweep, traffic run, and scenario cell into a
fingerprinted **job**: canonical spec in, JSON payload out, deduplicated
against identical in-flight work and (server-side) a durable result cache,
checkpointed through the sweep journals so a killed server resumes
bit-identically.  ``repro.api.submit`` runs jobs in-process through the
same :class:`~repro.service.registry.JobRegistry` the socket server
(:mod:`repro.service.server`, ``repro-serve``) exposes remotely; the
:class:`~repro.service.handles.JobHandle` a caller holds behaves
identically either way.

See DESIGN.md's "Service layer" section for the architecture.
"""

from __future__ import annotations

from repro.service.client import RemoteJobHandle, ServiceClient, ServiceError
from repro.service.handles import (
    DEDUP_CACHED,
    DEDUP_COALESCED,
    DEDUP_NEW,
    JobFailedError,
    JobHandle,
    JobStatus,
    LocalJobHandle,
)
from repro.service.jobs import (
    JOB_KINDS,
    JOB_SCHEMA,
    InlineTraces,
    JobSpec,
    JobSpecError,
    TraceFileSpec,
    TraceSuiteSpec,
    decode_result,
    inline_traces,
    scenario_job,
    suite_spec_for,
)
from repro.service.registry import (
    JobRecord,
    JobRegistry,
    get_default_registry,
    set_default_registry,
)
from repro.service.server import SweepServer

__all__ = [
    "DEDUP_CACHED",
    "DEDUP_COALESCED",
    "DEDUP_NEW",
    "InlineTraces",
    "JOB_KINDS",
    "JOB_SCHEMA",
    "JobFailedError",
    "JobHandle",
    "JobRecord",
    "JobRegistry",
    "JobSpec",
    "JobSpecError",
    "JobStatus",
    "LocalJobHandle",
    "RemoteJobHandle",
    "ServiceClient",
    "ServiceError",
    "SweepServer",
    "TraceFileSpec",
    "TraceSuiteSpec",
    "decode_result",
    "get_default_registry",
    "inline_traces",
    "scenario_job",
    "set_default_registry",
    "suite_spec_for",
]
