"""The sweep service's socket front end: JSON lines over TCP, stdlib only.

One asyncio server sits in front of one :class:`~repro.service.registry.JobRegistry`.
Each request is a single JSON object on its own line; each response is one
JSON line (``{"ok": true, ...}`` or ``{"ok": false, "error": ...}``), except
``stream``, which sends one line per job event and a final
``{"ok": true, "end": true}``.  A connection can issue any number of
requests back to back; the server handles many connections concurrently
while all actual computation serializes through the registry's single job
thread onto the shared worker pool.

Operations::

    {"op": "ping"}                    -> {"ok": true, "schema": 1}
    {"op": "submit", "spec": {...}}   -> {"ok": true, "job_id", "dedup", "status"}
    {"op": "status", "job_id": "..."} -> {"ok": true, "status": {...}}
    {"op": "result", "job_id": "..."} -> blocks; {"ok": true, "kind", "result"}
    {"op": "stream", "job_id": "..."} -> event lines, then {"ok": true, "end": true}
    {"op": "jobs"}                    -> {"ok": true, "jobs": [...]}
    {"op": "telemetry"}               -> {"ok": true, "telemetry": {...}}
    {"op": "shutdown"}                -> {"ok": true}; server drains and stops

Blocking registry calls (``wait``, ``events_since``) are pushed onto the
default thread-pool executor so a client parked on ``result`` never stalls
the event loop.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Optional

from repro.service.handles import FAILED
from repro.service.jobs import JOB_SCHEMA, JobSpec, JobSpecError
from repro.service.registry import JobRegistry
from repro.telemetry import get_telemetry

logger = logging.getLogger(__name__)

#: hard ceiling on one request line (a spec is small; traces never inline)
MAX_LINE_BYTES = 1 << 20


class SweepServer:
    """Serve one :class:`JobRegistry` over a host:port JSON-lines socket."""

    def __init__(
        self, registry: JobRegistry, host: str = "127.0.0.1", port: int = 0
    ):
        self.registry = registry
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None

    async def start(self) -> None:
        """Bind the socket (resolving port 0 to the real one)."""
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("repro service listening on %s:%d", self.host, self.port)

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`stop` (or a ``shutdown`` op) fires."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._stopped.wait()

    def stop(self) -> None:
        if self._stopped is not None:
            self._stopped.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    # oversized or torn request line: drop the connection
                    break
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as error:
                    await self._send(writer, {"ok": False, "error": str(error)})
                    continue
                get_telemetry().count("service.requests")
                try:
                    done = await self._dispatch(request, writer)
                except ConnectionError:  # pragma: no cover - client vanished
                    break
                if done:
                    break
        except asyncio.CancelledError:  # pragma: no cover - server teardown
            raise
        except Exception:  # pragma: no cover - connection-level guard
            logger.exception("connection %s failed", peer)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _send(self, writer, payload: dict) -> None:
        writer.write(json.dumps(payload, separators=(",", ":")).encode() + b"\n")
        await writer.drain()

    async def _dispatch(self, request: dict, writer) -> bool:
        """Handle one request; True means close the connection after."""
        op = request.get("op")
        if op == "ping":
            await self._send(writer, {"ok": True, "schema": JOB_SCHEMA})
            return False
        if op == "submit":
            await self._send(writer, self._op_submit(request))
            return False
        if op == "status":
            await self._send(writer, self._op_status(request))
            return False
        if op == "result":
            await self._send(writer, await self._op_result(request))
            return False
        if op == "stream":
            await self._op_stream(request, writer)
            return False
        if op == "jobs":
            statuses = [status.to_json() for status in self.registry.jobs()]
            await self._send(writer, {"ok": True, "jobs": statuses})
            return False
        if op == "telemetry":
            await self._send(
                writer, {"ok": True, "telemetry": get_telemetry().to_json()}
            )
            return False
        if op == "shutdown":
            await self._send(writer, {"ok": True})
            self.stop()
            return True
        await self._send(writer, {"ok": False, "error": f"unknown op {op!r}"})
        return False

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def _op_submit(self, request: dict) -> dict:
        try:
            spec = JobSpec.from_json(request.get("spec"))
            record, dedup = self.registry.submit(spec)
        except JobSpecError as error:
            return {"ok": False, "error": str(error)}
        status = record.status(dedup=dedup)
        return {
            "ok": True,
            "job_id": record.job_id,
            "kind": spec.kind,
            "dedup": dedup,
            "status": status.to_json(),
        }

    def _op_status(self, request: dict) -> dict:
        record = self.registry.get(str(request.get("job_id")))
        if record is None:
            return {"ok": False, "error": "unknown job"}
        return {"ok": True, "status": record.status().to_json()}

    async def _op_result(self, request: dict) -> dict:
        record = self.registry.get(str(request.get("job_id")))
        if record is None:
            return {"ok": False, "error": "unknown job"}
        loop = asyncio.get_running_loop()
        try:
            payload = await loop.run_in_executor(None, record.wait)
        except BaseException as error:  # noqa: BLE001 - relay job failure
            return {"ok": False, "error": str(error), "state": FAILED}
        return {"ok": True, "kind": record.spec.kind, "result": payload}

    async def _op_stream(self, request: dict, writer) -> None:
        record = self.registry.get(str(request.get("job_id")))
        if record is None:
            await self._send(writer, {"ok": False, "error": "unknown job"})
            return
        loop = asyncio.get_running_loop()
        index = 0
        while True:
            batch, index, finished = await loop.run_in_executor(
                None, record.events_since, index
            )
            for event in batch:
                await self._send(writer, {"ok": True, "event": event})
            if finished:
                await self._send(writer, {"ok": True, "end": True})
                return


async def serve(registry: JobRegistry, host: str, port: int) -> None:
    """Convenience: build a server and run it until a shutdown op."""
    server = SweepServer(registry, host=host, port=port)
    await server.serve_until_stopped()
