"""Sharing-event records and the array-backed trace container.

Terminology (see DESIGN.md section 3):

* An **event** is a store that performed a coherence action on a shared
  block: a write miss or a write fault/upgrade.  Silent stores by the
  current exclusive owner are not events.
* The **epoch** opened by an event lasts until the next event on the same
  block (or the end of the trace).  Its **truth bitmap** is the set of nodes
  other than the writer that read the block during the epoch -- exactly what
  an ideal predictor should have predicted at the event.
* The **invalidation bitmap** of an event is the truth bitmap of the epoch
  the event closes: the readers the directory invalidates.  It is the raw
  feedback available to direct update.  The first event on a block closes no
  epoch; its invalidation bitmap is invalid (``has_inval`` false).
* ``close`` is the index of the event that closes this event's epoch, or
  ``len(trace)`` when the epoch is still open at the end of the trace.
  Forwarded update delivers ``truth[i]`` to entry ``key[i]`` at ``close[i]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence

import numpy as np

from repro.util.bitmaps import bitmap_layout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.machine import MachineSpec


@dataclass(frozen=True)
class SharingEvent:
    """One prediction event, in record form (convenient for tests)."""

    writer: int
    pc: int
    home: int
    block: int
    truth: int
    inval: int
    has_inval: bool
    close: int


class SharingTrace:
    """An immutable, array-backed sequence of sharing events.

    The arrays make the vectorized evaluator a set of numpy passes; the
    record view (:meth:`events`, indexing) keeps tests and the reference
    evaluator readable.  Bitmap columns are stored per the machine width's
    :class:`~repro.util.bitmaps.BitmapLayout` (``uint32`` up to 32 nodes,
    ``uint64`` up to 64, packed 2-D word rows beyond); ``machine``
    optionally records the :class:`~repro.machine.MachineSpec` the trace
    was generated under (``None`` means the paper-default machine).
    """

    def __init__(
        self,
        num_nodes: int,
        writer: Sequence[int],
        pc: Sequence[int],
        home: Sequence[int],
        block: Sequence[int],
        truth: Sequence[int],
        inval: Sequence[int],
        has_inval: Sequence[bool],
        close: Sequence[int],
        name: str = "trace",
        machine: Optional["MachineSpec"] = None,
    ):
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        if machine is not None and machine.num_nodes != num_nodes:
            raise ValueError(
                f"machine spec is for {machine.num_nodes} nodes, trace for {num_nodes}"
            )
        self.num_nodes = num_nodes
        self.name = name
        self.machine = machine
        self.layout = bitmap_layout(num_nodes)
        self.writer = np.asarray(writer, dtype=np.int64)
        self.pc = np.asarray(pc, dtype=np.int64)
        self.home = np.asarray(home, dtype=np.int64)
        self.block = np.asarray(block, dtype=np.int64)
        self.truth = self.layout.asarray(truth)
        self.inval = self.layout.asarray(inval)
        self.has_inval = np.asarray(has_inval, dtype=bool)
        self.close = np.asarray(close, dtype=np.int64)
        self._validate()

    def _validate(self) -> None:
        length = len(self.writer)
        for field_name in ("pc", "home", "block", "truth", "inval", "has_inval", "close"):
            field = getattr(self, field_name)
            if len(field) != length:
                raise ValueError(
                    f"field {field_name} has length {len(field)}, expected {length}"
                )
        if length:
            if int(self.writer.min()) < 0 or int(self.writer.max()) >= self.num_nodes:
                raise ValueError("writer ids must lie in [0, num_nodes)")
            if int(self.home.min()) < 0 or int(self.home.max()) >= self.num_nodes:
                raise ValueError("home ids must lie in [0, num_nodes)")
            if self.layout.has_excess_bits(self.truth) or self.layout.has_excess_bits(
                self.inval
            ):
                raise ValueError("bitmaps contain bits beyond num_nodes")
            writer_bits = self.layout.test_bit(self.truth, self.writer)
            if writer_bits.any():
                raise ValueError("truth bitmaps must not include the writer's own bit")
            if int(self.close.min()) < 0 or int(self.close.max()) > length:
                raise ValueError("close indices must lie in [0, len(trace)]")

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.writer)

    def __getitem__(self, index: int) -> SharingEvent:
        return SharingEvent(
            writer=int(self.writer[index]),
            pc=int(self.pc[index]),
            home=int(self.home[index]),
            block=int(self.block[index]),
            truth=self.layout.to_int(self.truth[index]),
            inval=self.layout.to_int(self.inval[index]),
            has_inval=bool(self.has_inval[index]),
            close=int(self.close[index]),
        )

    def events(self) -> Iterator[SharingEvent]:
        """Iterate events in record form."""
        for index in range(len(self)):
            yield self[index]

    def truth_ints(self) -> List[int]:
        """The truth column as Python ints (for the sequential evaluators)."""
        return self.layout.to_int_list(self.truth)

    def inval_ints(self) -> List[int]:
        """The invalidation column as Python ints."""
        return self.layout.to_int_list(self.inval)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_events(
        cls,
        num_nodes: int,
        events: Sequence[SharingEvent],
        name: str = "trace",
        machine: Optional["MachineSpec"] = None,
    ) -> "SharingTrace":
        """Build a trace from a list of fully-specified records."""
        return cls(
            num_nodes=num_nodes,
            writer=[event.writer for event in events],
            pc=[event.pc for event in events],
            home=[event.home for event in events],
            block=[event.block for event in events],
            truth=[event.truth for event in events],
            inval=[event.inval for event in events],
            has_inval=[event.has_inval for event in events],
            close=[event.close for event in events],
            name=name,
            machine=machine,
        )

    @classmethod
    def from_epochs(
        cls,
        num_nodes: int,
        epochs: Sequence[tuple],
        name: str = "trace",
        machine: Optional["MachineSpec"] = None,
    ) -> "SharingTrace":
        """Build a trace from bare ``(writer, pc, home, block, truth)`` tuples.

        The per-block linkage (invalidation bitmaps, ``has_inval`` flags, and
        close indices) is derived automatically -- this is the convenient
        constructor for tests and synthetic traces.
        """
        length = len(epochs)
        inval: List[int] = [0] * length
        has_inval: List[bool] = [False] * length
        close: List[int] = [length] * length
        previous_event_on_block: dict = {}
        for index, (writer, pc, home, block, truth) in enumerate(epochs):
            if truth & (1 << writer):
                raise ValueError(
                    f"epoch {index}: truth bitmap includes writer {writer}"
                )
            previous = previous_event_on_block.get(block)
            if previous is not None:
                inval[index] = epochs[previous][4]
                has_inval[index] = True
                close[previous] = index
            previous_event_on_block[block] = index
        return cls(
            num_nodes=num_nodes,
            writer=[epoch[0] for epoch in epochs],
            pc=[epoch[1] for epoch in epochs],
            home=[epoch[2] for epoch in epochs],
            block=[epoch[3] for epoch in epochs],
            truth=[epoch[4] for epoch in epochs],
            inval=inval,
            has_inval=has_inval,
            close=close,
            name=name,
            machine=machine,
        )

    def check_consistency(self) -> None:
        """Verify the per-block linkage invariants.

        For every event *i* that closes an epoch *j* (``close[j] == i``):
        ``block[i] == block[j]`` and ``inval[i] == truth[j]``; and events are
        the only closers of their block's previous epoch.  Raises
        ``ValueError`` on any violation.  Used by property tests and the
        trace loader.
        """
        last_event_on_block: dict = {}
        for index in range(len(self)):
            block = int(self.block[index])
            previous = last_event_on_block.get(block)
            if previous is None:
                if bool(self.has_inval[index]):
                    raise ValueError(f"event {index}: first on block but has_inval set")
            else:
                if int(self.close[previous]) != index:
                    raise ValueError(
                        f"event {previous}: close={int(self.close[previous])}, "
                        f"expected {index}"
                    )
                if not bool(self.has_inval[index]):
                    raise ValueError(f"event {index}: closes an epoch but has_inval unset")
                if self.layout.to_int(self.inval[index]) != self.layout.to_int(
                    self.truth[previous]
                ):
                    raise ValueError(
                        f"event {index}: inval != truth of closed epoch {previous}"
                    )
            last_event_on_block[block] = index
        for block, last in last_event_on_block.items():
            if int(self.close[last]) != len(self):
                raise ValueError(
                    f"event {last}: last on block {block} but close != len(trace)"
                )
