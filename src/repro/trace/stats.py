"""Trace-level statistics: the inputs to the paper's Tables 5 and 6.

Everything here is computable from a :class:`SharingTrace` alone, so stats
can be reproduced from cached traces without rerunning the protocol
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Union

import numpy as np

from repro.metrics.confusion import ConfusionCounts
from repro.trace.events import SharingTrace
from repro.trace.source import TraceChunk, TraceSource, as_source


@dataclass(frozen=True)
class TraceStats:
    """Per-benchmark statistics in the shape of paper Tables 5/6."""

    name: str
    num_nodes: int
    events: int  # coherence store misses (prediction events)
    blocks_touched: int  # distinct blocks appearing in the trace
    max_static_stores_per_node: int  # distinct store pcs at the busiest node
    max_predicted_stores_per_node: int  # (same; every traced store predicted)
    sharing_events: int  # total set bits across truth bitmaps (Table 6 col 1)
    sharing_decisions: int  # events x num_nodes (Table 6 col 2)

    @property
    def prevalence(self) -> float:
        """Fraction of sharing decisions that were true sharing (Table 6)."""
        if self.sharing_decisions == 0:
            return 0.0
        return self.sharing_events / self.sharing_decisions

    @property
    def degree_of_sharing(self) -> float:
        """Average number of reader nodes per event (Weber & Gupta)."""
        if self.events == 0:
            return 0.0
        return self.sharing_events / self.events


class TraceStatsAccumulator:
    """Single-pass stats over chunked events.

    Per-chunk numpy reductions feed O(distinct blocks + distinct store
    sites) running state, so stats over a file-backed source never
    materialize the trace.  Feeding a whole trace as one chunk is the
    resident case -- :func:`compute_trace_stats` is now just this
    accumulator run over ``source.chunks()``.
    """

    def __init__(self, name: str, num_nodes: int):
        self.name = name
        self.num_nodes = num_nodes
        self._events = 0
        self._sharing_events = 0
        self._blocks: Set[int] = set()
        self._pcs_by_node: Dict[int, Set[int]] = {}

    def update(self, chunk: TraceChunk) -> None:
        self._events += len(chunk)
        if len(chunk) == 0:
            return
        self._sharing_events += int(chunk.layout.popcount(chunk.truth).sum())
        self._blocks.update(np.unique(chunk.block).tolist())
        # distinct (writer, pc) pairs per chunk keep the python-level set
        # work proportional to site count, not event count
        sites = np.unique(
            np.stack([chunk.writer, chunk.pc], axis=1), axis=0
        )
        for writer, pc in sites.tolist():
            self._pcs_by_node.setdefault(writer, set()).add(pc)

    def finish(self) -> TraceStats:
        max_stores = max(
            (len(pcs) for pcs in self._pcs_by_node.values()), default=0
        )
        return TraceStats(
            name=self.name,
            num_nodes=self.num_nodes,
            events=self._events,
            blocks_touched=len(self._blocks),
            max_static_stores_per_node=max_stores,
            max_predicted_stores_per_node=max_stores,
            sharing_events=self._sharing_events,
            sharing_decisions=self._events * self.num_nodes,
        )


def compute_trace_stats(trace: Union[SharingTrace, TraceSource]) -> TraceStats:
    """Derive all statistics from one trace or source (single pass)."""
    source = as_source(trace)
    accumulator = TraceStatsAccumulator(source.name, source.num_nodes)
    for chunk in source.chunks():
        accumulator.update(chunk)
    return accumulator.finish()


def oracle_counts(trace: Union[SharingTrace, TraceSource]) -> ConfusionCounts:
    """Confusion counts of a perfect predictor (all positives true).

    Useful as the upper-bound row in reports: sensitivity and PVP are both
    1, and prevalence equals the trace's base rate.
    """
    stats = compute_trace_stats(trace)
    return ConfusionCounts(
        true_positive=stats.sharing_events,
        false_positive=0,
        false_negative=0,
        true_negative=stats.sharing_decisions - stats.sharing_events,
    )
