"""Trace-level statistics: the inputs to the paper's Tables 5 and 6.

Everything here is computable from a :class:`SharingTrace` alone, so stats
can be reproduced from cached traces without rerunning the protocol
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

import numpy as np

from repro.metrics.confusion import ConfusionCounts
from repro.trace.events import SharingTrace


@dataclass(frozen=True)
class TraceStats:
    """Per-benchmark statistics in the shape of paper Tables 5/6."""

    name: str
    num_nodes: int
    events: int  # coherence store misses (prediction events)
    blocks_touched: int  # distinct blocks appearing in the trace
    max_static_stores_per_node: int  # distinct store pcs at the busiest node
    max_predicted_stores_per_node: int  # (same; every traced store predicted)
    sharing_events: int  # total set bits across truth bitmaps (Table 6 col 1)
    sharing_decisions: int  # events x num_nodes (Table 6 col 2)

    @property
    def prevalence(self) -> float:
        """Fraction of sharing decisions that were true sharing (Table 6)."""
        if self.sharing_decisions == 0:
            return 0.0
        return self.sharing_events / self.sharing_decisions

    @property
    def degree_of_sharing(self) -> float:
        """Average number of reader nodes per event (Weber & Gupta)."""
        if self.events == 0:
            return 0.0
        return self.sharing_events / self.events


def compute_trace_stats(trace: SharingTrace) -> TraceStats:
    """Derive all statistics from one trace."""
    length = len(trace)
    sharing_events = int(trace.layout.popcount(trace.truth).sum()) if length else 0
    pcs_by_node: Dict[int, Set[int]] = {}
    for writer, pc in zip(trace.writer.tolist(), trace.pc.tolist()):
        pcs_by_node.setdefault(writer, set()).add(pc)
    max_stores = max((len(pcs) for pcs in pcs_by_node.values()), default=0)
    return TraceStats(
        name=trace.name,
        num_nodes=trace.num_nodes,
        events=length,
        blocks_touched=int(np.unique(trace.block).size) if length else 0,
        max_static_stores_per_node=max_stores,
        max_predicted_stores_per_node=max_stores,
        sharing_events=sharing_events,
        sharing_decisions=length * trace.num_nodes,
    )


def oracle_counts(trace: SharingTrace) -> ConfusionCounts:
    """Confusion counts of a perfect predictor (all positives true).

    Useful as the upper-bound row in reports: sensitivity and PVP are both
    1, and prevalence equals the trace's base rate.
    """
    stats = compute_trace_stats(trace)
    return ConfusionCounts(
        true_positive=stats.sharing_events,
        false_positive=0,
        false_negative=0,
        true_negative=stats.sharing_decisions - stats.sharing_events,
    )
