"""The ``TraceSource`` abstraction: traces as streams of columnar chunks.

A :class:`~repro.trace.events.SharingTrace` is a *resident* trace: every
column lives in memory at full length.  That is the right shape for the
paper-scale suite (a few hundred thousand events per benchmark), but the
roadmap's externally captured traces run to millions of events, and
holding eight full-length columns -- plus the evaluator's per-scheme
temporaries -- defeats the point of streaming them off disk.

:class:`TraceSource` is the minimal common shape both worlds share: a
length / node-count / :class:`~repro.machine.MachineSpec` header plus an
iterator of fixed-size :class:`TraceChunk` column windows.  The resident
trace is one implementation (:class:`ResidentTraceSource`, zero-copy
views); the ``.rtrace`` interchange file is another
(:mod:`repro.trace.interchange`).  Consumers that can work a window at a
time (the windowed evaluator in :mod:`repro.core.windowed`, the streaming
stats accumulator, the traffic replayer) accept either via
:func:`as_source`; consumers that genuinely need residency call
:func:`as_trace` and pay for it explicitly.

**Chunks duck-type as miniature traces.**  A :class:`TraceChunk` exposes
the same column attributes (``writer`` ... ``close``), ``num_nodes``,
``layout``, and ``__len__`` as a ``SharingTrace``, so column-wise
helpers -- :func:`repro.core.vectorized.compute_keys`,
:func:`repro.core.kernel_backends.score_predictions` -- work on chunks
unchanged.  ``close`` indices stay *absolute* (they may point past the
chunk's end); ``chunk.start`` anchors the window in the full trace.

**Fingerprints.**  The resident content fingerprint
(:func:`repro.trace.shm.trace_fingerprint`) hashes columns field-major,
which cannot be computed in one chunk-major pass.  Streams therefore
carry their own :func:`stream_fingerprint`: one sub-hash per field, fed
chunk by chunk, combined field-major at the end.  Both fingerprints are
pure functions of the same content -- two sources with equal events have
equal stream fingerprints, and materializing a source yields a resident
trace whose classic fingerprint matches an identically built in-memory
trace -- so every existing cache, journal, and golden fixture keyed on
the resident fingerprint stays valid (DESIGN.md, "Trace interchange and
streaming").
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Union

import numpy as np

from repro.trace.events import SharingTrace
from repro.util.bitmaps import BitmapLayout, bitmap_layout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine import MachineSpec

#: default events per chunk -- large enough that per-chunk numpy passes
#: amortize, small enough that a chunk's working set stays in cache-ish
#: territory (~4 MB of columns at 64 nodes)
DEFAULT_CHUNK_EVENTS = 65536

#: the array fields of a trace chunk, in canonical serialization order
#: (identical to :data:`repro.trace.shm.TRACE_FIELDS` -- redeclared here so
#: the streaming layer has no import dependency on the shm transport)
CHUNK_FIELDS = ("writer", "pc", "home", "block", "truth", "inval", "has_inval", "close")


class TraceChunk:
    """One contiguous window of trace events, as columnar views.

    Duck-types as a miniature :class:`~repro.trace.events.SharingTrace`
    for column-wise consumers; ``start`` is the window's absolute offset
    in the full trace and ``close`` values are absolute event indices
    (``close >= chunk.end`` means the epoch closes beyond this window).
    """

    __slots__ = (
        "num_nodes",
        "layout",
        "name",
        "machine",
        "start",
        "writer",
        "pc",
        "home",
        "block",
        "truth",
        "inval",
        "has_inval",
        "close",
    )

    def __init__(
        self,
        num_nodes: int,
        start: int,
        writer: np.ndarray,
        pc: np.ndarray,
        home: np.ndarray,
        block: np.ndarray,
        truth: np.ndarray,
        inval: np.ndarray,
        has_inval: np.ndarray,
        close: np.ndarray,
        name: str = "trace",
        machine: Optional["MachineSpec"] = None,
    ):
        self.num_nodes = num_nodes
        self.layout = bitmap_layout(num_nodes)
        self.name = name
        self.machine = machine
        self.start = start
        self.writer = writer
        self.pc = pc
        self.home = home
        self.block = block
        self.truth = truth
        self.inval = inval
        self.has_inval = has_inval
        self.close = close

    def __len__(self) -> int:
        return len(self.writer)

    @property
    def end(self) -> int:
        """Absolute index one past the chunk's last event."""
        return self.start + len(self.writer)

    def truth_ints(self) -> List[int]:
        """The truth window as Python ints (for the sequential kernel)."""
        return self.layout.to_int_list(self.truth)

    def inval_ints(self) -> List[int]:
        """The invalidation window as Python ints."""
        return self.layout.to_int_list(self.inval)


class TraceSource(ABC):
    """A trace as a header plus an iterable of columnar chunks.

    Implementations promise: ``len(source)`` is the exact event count,
    :meth:`chunks` yields non-overlapping, in-order windows covering all
    events, and :meth:`fingerprint` is the content's
    :func:`stream_fingerprint`.  Iterating :meth:`chunks` is restartable
    (each call begins a fresh pass).
    """

    name: str = "trace"
    num_nodes: int = 0
    machine: Optional["MachineSpec"] = None
    chunk_events: int = DEFAULT_CHUNK_EVENTS

    @property
    def layout(self) -> BitmapLayout:
        """The bitmap column layout for this source's machine width."""
        return bitmap_layout(self.num_nodes)

    @abstractmethod
    def __len__(self) -> int:
        """Total number of events."""

    @abstractmethod
    def chunks(self, chunk_events: Optional[int] = None) -> Iterator[TraceChunk]:
        """Iterate the trace as column windows of up to ``chunk_events``."""

    @abstractmethod
    def fingerprint(self) -> str:
        """The content's streaming fingerprint (:func:`stream_fingerprint`)."""

    def materialize(self) -> SharingTrace:
        """Assemble the full resident trace (pays the resident memory cost)."""
        chunks = list(self.chunks())
        if not chunks:
            empty = self.layout.zeros(0)
            return SharingTrace(
                num_nodes=self.num_nodes,
                writer=np.zeros(0, dtype=np.int64),
                pc=np.zeros(0, dtype=np.int64),
                home=np.zeros(0, dtype=np.int64),
                block=np.zeros(0, dtype=np.int64),
                truth=empty,
                inval=empty,
                has_inval=np.zeros(0, dtype=bool),
                close=np.zeros(0, dtype=np.int64),
                name=self.name,
                machine=self.machine,
            )
        columns = {
            field: np.concatenate([getattr(chunk, field) for chunk in chunks])
            for field in CHUNK_FIELDS
        }
        return SharingTrace(
            num_nodes=self.num_nodes,
            name=self.name,
            machine=self.machine,
            **columns,
        )


class ResidentTraceSource(TraceSource):
    """A :class:`SharingTrace` viewed through the source interface.

    Chunks are zero-copy slices of the resident columns -- wrapping a
    trace as a source costs nothing but the object header.
    """

    def __init__(self, trace: SharingTrace, chunk_events: int = DEFAULT_CHUNK_EVENTS):
        self.trace = trace
        self.name = trace.name
        self.num_nodes = trace.num_nodes
        self.machine = trace.machine
        self.chunk_events = chunk_events

    def __len__(self) -> int:
        return len(self.trace)

    def chunks(self, chunk_events: Optional[int] = None) -> Iterator[TraceChunk]:
        step = chunk_events or self.chunk_events
        if step < 1:
            raise ValueError(f"chunk_events must be positive, got {step}")
        trace = self.trace
        for start in range(0, len(trace), step):
            stop = min(start + step, len(trace))
            yield TraceChunk(
                num_nodes=trace.num_nodes,
                start=start,
                writer=trace.writer[start:stop],
                pc=trace.pc[start:stop],
                home=trace.home[start:stop],
                block=trace.block[start:stop],
                truth=trace.truth[start:stop],
                inval=trace.inval[start:stop],
                has_inval=trace.has_inval[start:stop],
                close=trace.close[start:stop],
                name=trace.name,
                machine=trace.machine,
            )

    def fingerprint(self) -> str:
        return stream_fingerprint(self)

    def materialize(self) -> SharingTrace:
        return self.trace


def as_source(trace: Union[SharingTrace, TraceSource]) -> TraceSource:
    """View a trace through the source interface (no copy for residents)."""
    if isinstance(trace, TraceSource):
        return trace
    return ResidentTraceSource(trace)


def as_trace(trace: Union[SharingTrace, TraceSource]) -> SharingTrace:
    """Materialize a source into a resident trace (pass-through otherwise)."""
    if isinstance(trace, TraceSource):
        return trace.materialize()
    return trace


def rechunk(
    chunks: Iterable[TraceChunk], chunk_events: int
) -> Iterator[TraceChunk]:
    """Re-window a chunk stream into exact ``chunk_events``-sized chunks.

    Buffers at most one output window plus one input chunk, so memory
    stays O(max(chunk_events, native chunk)).  The final chunk carries
    the remainder.  Used when a consumer asks a file-backed source for a
    chunk size other than the one the file was written with.
    """
    if chunk_events < 1:
        raise ValueError(f"chunk_events must be positive, got {chunk_events}")
    buffer: Optional[dict] = None
    buffered = 0
    start = 0
    meta: Optional[tuple] = None

    def drain(columns: dict, count: int, offset: int) -> TraceChunk:
        assert meta is not None
        num_nodes, name, machine = meta
        return TraceChunk(
            num_nodes=num_nodes,
            start=offset,
            name=name,
            machine=machine,
            **{field: columns[field][:count] for field in CHUNK_FIELDS},
        )

    for chunk in chunks:
        if meta is None:
            meta = (chunk.num_nodes, chunk.name, chunk.machine)
            start = chunk.start
            buffer = {field: [] for field in CHUNK_FIELDS}
        assert buffer is not None
        for field in CHUNK_FIELDS:
            buffer[field].append(getattr(chunk, field))
        buffered += len(chunk)
        while buffered >= chunk_events:
            columns = {
                field: (
                    parts[0] if len(parts) == 1 else np.concatenate(parts)
                )
                for field, parts in buffer.items()
            }
            yield drain(columns, chunk_events, start)
            start += chunk_events
            buffered -= chunk_events
            buffer = {
                field: ([columns[field][chunk_events:]] if buffered else [])
                for field in CHUNK_FIELDS
            }
    if buffered and buffer is not None:
        columns = {
            field: (parts[0] if len(parts) == 1 else np.concatenate(parts))
            for field, parts in buffer.items()
        }
        yield drain(columns, buffered, start)


# ----------------------------------------------------------------------
# Streaming fingerprints
# ----------------------------------------------------------------------


class StreamFingerprinter:
    """Incremental content fingerprint over chunked columns.

    The resident :func:`~repro.trace.shm.trace_fingerprint` hashes
    field-major (all of ``writer``, then all of ``pc``, ...), which a
    single chunk-major pass cannot produce.  This fingerprinter instead
    keeps one sub-hash per field, feeds each chunk's column bytes into
    its field's sub-hash, and combines the sub-digests field-major at
    :meth:`finish` -- so the result is computable both incrementally
    (writers, importers) and in one cheap pass over a resident trace,
    and two equal-content traces agree regardless of how they were
    chunked.
    """

    def __init__(
        self,
        num_nodes: int,
        name: str = "trace",
        machine: Optional["MachineSpec"] = None,
    ):
        self.num_nodes = num_nodes
        self.name = name
        self.machine = machine
        self._fields = {field: hashlib.sha256() for field in CHUNK_FIELDS}
        self._dtypes: dict = {}

    def update(self, chunk: TraceChunk) -> None:
        """Fold one chunk's columns into the per-field sub-hashes."""
        for field in CHUNK_FIELDS:
            array = np.ascontiguousarray(getattr(chunk, field))
            self._dtypes.setdefault(field, str(array.dtype))
            self._fields[field].update(array.tobytes())

    def finish(self) -> str:
        """The combined 16-hex-digit fingerprint."""
        digest = hashlib.sha256()
        digest.update(
            f"stream;nodes={self.num_nodes};name={self.name};".encode("utf-8")
        )
        if self.machine is not None:
            digest.update(
                f"machine={self.machine.trace_label()};".encode("utf-8")
            )
        layout = bitmap_layout(self.num_nodes)
        defaults = _canonical_dtypes(layout)
        for field in CHUNK_FIELDS:
            digest.update(field.encode("utf-8"))
            digest.update(self._dtypes.get(field, defaults[field]).encode("utf-8"))
            digest.update(self._fields[field].digest())
        return digest.hexdigest()[:16]


def _canonical_dtypes(layout: BitmapLayout) -> dict:
    """The canonical column dtypes at one machine width, as strings."""
    bitmap = str(np.dtype(layout.dtype))
    return {
        "writer": "int64",
        "pc": "int64",
        "home": "int64",
        "block": "int64",
        "truth": bitmap,
        "inval": bitmap,
        "has_inval": "bool",
        "close": "int64",
    }


def stream_fingerprint(source: Union[SharingTrace, TraceSource]) -> str:
    """The streaming content fingerprint of a trace or source.

    One pass over the chunks; for a resident trace this is a handful of
    ``tobytes`` calls.  Chunk-size independent by construction.
    """
    source = as_source(source)
    fingerprinter = StreamFingerprinter(
        source.num_nodes, name=source.name, machine=source.machine
    )
    for chunk in source.chunks():
        fingerprinter.update(chunk)
    return fingerprinter.finish()


# ----------------------------------------------------------------------
# Streaming consistency checking
# ----------------------------------------------------------------------


class StreamingConsistencyChecker:
    """Single-pass per-block linkage verification over chunked events.

    The chunked twin of :meth:`SharingTrace.check_consistency`: the same
    invariants (every closer matches its epoch's block and truth; close
    indices are patched exactly once; open epochs close at end of trace),
    checked as chunks arrive with O(distinct blocks) state.  Raises
    ``ValueError`` on the first violation.
    """

    def __init__(self, num_nodes: int):
        self.num_nodes = num_nodes
        self.layout = bitmap_layout(num_nodes)
        #: block -> (last event index, its close, its truth as int)
        self._last: dict = {}
        self._events = 0

    def feed(self, chunk: TraceChunk) -> None:
        layout = self.layout
        blocks = chunk.block.tolist()
        closes = chunk.close.tolist()
        has_invals = chunk.has_inval.tolist()
        truths = layout.to_int_list(chunk.truth)
        invals = layout.to_int_list(chunk.inval)
        last = self._last
        base = chunk.start
        if base != self._events:
            raise ValueError(
                f"chunk starts at {base}, expected {self._events} (gap or overlap)"
            )
        for offset in range(len(blocks)):
            index = base + offset
            block = blocks[offset]
            previous = last.get(block)
            if previous is None:
                if has_invals[offset]:
                    raise ValueError(
                        f"event {index}: first on block but has_inval set"
                    )
            else:
                prev_index, prev_close, prev_truth = previous
                if prev_close != index:
                    raise ValueError(
                        f"event {prev_index}: close={prev_close}, expected {index}"
                    )
                if not has_invals[offset]:
                    raise ValueError(
                        f"event {index}: closes an epoch but has_inval unset"
                    )
                if invals[offset] != prev_truth:
                    raise ValueError(
                        f"event {index}: inval != truth of closed epoch {prev_index}"
                    )
            last[block] = (index, closes[offset], truths[offset])
        self._events += len(blocks)

    def finish(self) -> None:
        """Verify end-of-trace invariants (open epochs close at ``len``)."""
        for block, (index, close, _truth) in self._last.items():
            if close != self._events:
                raise ValueError(
                    f"event {index}: last on block {block} but close != len(trace)"
                )
