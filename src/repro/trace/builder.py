"""Incremental construction of sharing traces from protocol activity.

The protocol engine reports two things as it runs: "node W wrote block B
under pc P (a coherence store)" and "node R read block B".  The builder
threads these into per-block epoch chains -- truth bitmaps, invalidation
bitmaps, close indices -- and finalizes into an immutable
:class:`~repro.trace.events.SharingTrace`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.trace.events import SharingTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine import MachineSpec


class SharingTraceBuilder:
    """Accumulates prediction events and their epoch reader sets.

    ``machine`` (optional) is stamped onto the finalized trace so the spec
    travels with the data it produced.
    """

    def __init__(
        self,
        num_nodes: int,
        name: str = "trace",
        machine: Optional["MachineSpec"] = None,
    ):
        self.num_nodes = num_nodes
        self.name = name
        self.machine = machine
        self._writer: List[int] = []
        self._pc: List[int] = []
        self._home: List[int] = []
        self._block: List[int] = []
        self._truth: List[int] = []
        self._inval: List[int] = []
        self._has_inval: List[bool] = []
        self._close: List[int] = []
        self._open_event_by_block: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._writer)

    def add_event(self, writer: int, pc: int, home: int, block: int) -> int:
        """Record a coherence store: closes the block's open epoch, opens a new one.

        Returns the new event's index.
        """
        index = len(self._writer)
        previous = self._open_event_by_block.get(block)
        if previous is None:
            inval, has_inval = 0, False
        else:
            inval, has_inval = self._truth[previous], True
            self._close[previous] = index
        self._writer.append(writer)
        self._pc.append(pc)
        self._home.append(home)
        self._block.append(block)
        self._truth.append(0)
        self._inval.append(inval)
        self._has_inval.append(has_inval)
        self._close.append(-1)  # patched when the epoch closes / at finalize
        self._open_event_by_block[block] = index
        return index

    def add_reader(self, block: int, node: int) -> None:
        """Record that ``node`` truly read ``block`` during its open epoch.

        Reads before the block's first coherence store (cold data) have no
        epoch to credit and are ignored -- see DESIGN.md on why pre-write
        reader sets are excluded from predictor feedback.
        """
        event = self._open_event_by_block.get(block)
        if event is None:
            return
        if node == self._writer[event]:
            return  # the producer re-reading its own data is not sharing
        self._truth[event] |= 1 << node

    def finalize(self) -> SharingTrace:
        """Close all open epochs at end-of-trace and build the trace.

        Mirrors the paper's use of "the final state of the memory" to
        resolve sharing information for epochs still open when the program
        ends (Section 5.1).
        """
        length = len(self._writer)
        close = [length if value < 0 else value for value in self._close]
        trace = SharingTrace(
            num_nodes=self.num_nodes,
            writer=self._writer,
            pc=self._pc,
            home=self._home,
            block=self._block,
            truth=self._truth,
            inval=self._inval,
            has_inval=self._has_inval,
            close=close,
            name=self.name,
            machine=self.machine,
        )
        trace.check_consistency()
        return trace
