"""Incremental construction of sharing traces from protocol activity.

The protocol engine reports two things as it runs: "node W wrote block B
under pc P (a coherence store)" and "node R read block B".  The builder
threads these into per-block epoch chains -- truth bitmaps, invalidation
bitmaps, close indices -- and finalizes into an immutable
:class:`~repro.trace.events.SharingTrace`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.trace.events import SharingTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine import MachineSpec


class SharingTraceBuilder:
    """Accumulates prediction events and their epoch reader sets.

    ``machine`` (optional) is stamped onto the finalized trace so the spec
    travels with the data it produced.
    """

    def __init__(
        self,
        num_nodes: int,
        name: str = "trace",
        machine: Optional["MachineSpec"] = None,
    ):
        self.num_nodes = num_nodes
        self.name = name
        self.machine = machine
        self._writer: List[int] = []
        self._pc: List[int] = []
        self._home: List[int] = []
        self._block: List[int] = []
        self._truth: List[int] = []
        self._inval: List[int] = []
        self._has_inval: List[bool] = []
        self._close: List[int] = []
        self._open_event_by_block: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._writer)

    def add_event(self, writer: int, pc: int, home: int, block: int) -> int:
        """Record a coherence store: closes the block's open epoch, opens a new one.

        Returns the new event's index.
        """
        index = len(self._writer)
        previous = self._open_event_by_block.get(block)
        if previous is None:
            inval, has_inval = 0, False
        else:
            inval, has_inval = self._truth[previous], True
            self._close[previous] = index
        self._writer.append(writer)
        self._pc.append(pc)
        self._home.append(home)
        self._block.append(block)
        self._truth.append(0)
        self._inval.append(inval)
        self._has_inval.append(has_inval)
        self._close.append(-1)  # patched when the epoch closes / at finalize
        self._open_event_by_block[block] = index
        return index

    def add_reader(self, block: int, node: int) -> None:
        """Record that ``node`` truly read ``block`` during its open epoch.

        Reads before the block's first coherence store (cold data) have no
        epoch to credit and are ignored -- see DESIGN.md on why pre-write
        reader sets are excluded from predictor feedback.
        """
        event = self._open_event_by_block.get(block)
        if event is None:
            return
        if node == self._writer[event]:
            return  # the producer re-reading its own data is not sharing
        self._truth[event] |= 1 << node

    def finalize(self) -> SharingTrace:
        """Close all open epochs at end-of-trace and build the trace.

        Mirrors the paper's use of "the final state of the memory" to
        resolve sharing information for epochs still open when the program
        ends (Section 5.1).
        """
        length = len(self._writer)
        close = [length if value < 0 else value for value in self._close]
        trace = SharingTrace(
            num_nodes=self.num_nodes,
            writer=self._writer,
            pc=self._pc,
            home=self._home,
            block=self._block,
            truth=self._truth,
            inval=self._inval,
            has_inval=self._has_inval,
            close=close,
            name=self.name,
            machine=self.machine,
        )
        trace.check_consistency()
        return trace


class StreamingTraceBuilder:
    """A trace builder that flushes finished events into a column sink.

    Same epoch-threading semantics as :class:`SharingTraceBuilder`, but
    instead of materializing the whole trace it pushes every *closed
    prefix* -- events whose truth and close index can no longer change --
    into ``sink.write_columns(...)`` (typically a
    :class:`~repro.trace.interchange.TraceWriter`).  An event is final
    exactly when it precedes every still-open epoch, so the in-memory
    buffer spans from the oldest open epoch to the present: bounded by
    block-reuse distance, not trace length.  (A block written once and
    never again pins its suffix resident -- the worst case degrades to
    the materializing builder, never to wrong output.)

    ``finalize`` closes the remaining epochs at end-of-trace, flushes the
    tail, and returns the total event count; sealing the sink (e.g.
    ``TraceWriter.close``) stays the caller's job.
    """

    def __init__(
        self,
        num_nodes: int,
        sink,
        name: str = "trace",
        machine: Optional["MachineSpec"] = None,
        flush_events: int = 65536,
    ):
        if flush_events < 1:
            raise ValueError(f"flush_events must be positive, got {flush_events}")
        self.num_nodes = num_nodes
        self.name = name
        self.machine = machine
        self.sink = sink
        self.flush_events = flush_events
        self._base = 0  # absolute index of the first buffered event
        self._writer: List[int] = []
        self._pc: List[int] = []
        self._home: List[int] = []
        self._block: List[int] = []
        self._truth: List[int] = []
        self._inval: List[int] = []
        self._has_inval: List[bool] = []
        self._close: List[int] = []
        #: block -> absolute index of its open event (always >= _base:
        #: open events are never flushed)
        self._open_event_by_block: Dict[int, int] = {}

    def __len__(self) -> int:
        """Total events recorded so far (flushed + buffered)."""
        return self._base + len(self._writer)

    def add_event(self, writer: int, pc: int, home: int, block: int) -> int:
        """Record a coherence store (see :meth:`SharingTraceBuilder.add_event`)."""
        index = self._base + len(self._writer)
        previous = self._open_event_by_block.get(block)
        if previous is None:
            inval, has_inval = 0, False
        else:
            slot = previous - self._base
            inval, has_inval = self._truth[slot], True
            self._close[slot] = index
        self._writer.append(writer)
        self._pc.append(pc)
        self._home.append(home)
        self._block.append(block)
        self._truth.append(0)
        self._inval.append(inval)
        self._has_inval.append(has_inval)
        self._close.append(-1)
        self._open_event_by_block[block] = index
        if len(self._writer) >= self.flush_events:
            self._flush()
        return index

    def add_reader(self, block: int, node: int) -> None:
        """Record a true read (see :meth:`SharingTraceBuilder.add_reader`)."""
        event = self._open_event_by_block.get(block)
        if event is None:
            return
        slot = event - self._base
        if node == self._writer[slot]:
            return  # the producer re-reading its own data is not sharing
        self._truth[slot] |= 1 << node

    def _flush(self, boundary: Optional[int] = None) -> None:
        """Emit buffered events below ``boundary`` (default: oldest open)."""
        if boundary is None:
            boundary = min(
                self._open_event_by_block.values(),
                default=self._base + len(self._writer),
            )
        count = boundary - self._base
        if count <= 0:
            return
        self.sink.write_columns(
            self._writer[:count],
            self._pc[:count],
            self._home[:count],
            self._block[:count],
            self._truth[:count],
            self._inval[:count],
            self._has_inval[:count],
            self._close[:count],
        )
        del self._writer[:count]
        del self._pc[:count]
        del self._home[:count]
        del self._block[:count]
        del self._truth[:count]
        del self._inval[:count]
        del self._has_inval[:count]
        del self._close[:count]
        self._base += count

    def finalize(self) -> int:
        """Close open epochs at end-of-trace, flush everything; event count."""
        length = self._base + len(self._writer)
        for slot in range(len(self._close)):
            if self._close[slot] < 0:
                self._close[slot] = length
        self._open_event_by_block.clear()
        self._flush(boundary=length)
        return length
