"""Sharing-pattern classification (the vocabulary of paper Section 1).

The paper deliberately refuses to filter sharing patterns out of its
predictors ("we do not assume any other filter in the system which could
distinguish sharing patterns"), but its analysis leans on the standard
taxonomy of Weber & Gupta [28] and Kaxiras [13]: producer-consumer,
migratory, wide sharing, and read-only data.  This module classifies each
block of a sharing trace into that taxonomy, so workload models can be
validated against the pattern mix they claim to produce and predictor
results can be explained per pattern.

Classification rules (per block, over its event chain):

* ``READ_ONLY``   — written once (or never after initialization) and only
  read afterwards: no communication to predict after the first epoch.
* ``MIGRATORY``   — multiple writers and small reader sets (at most one
  reader per epoch on average): the write token travels, each holder reads
  then writes.
* ``PRODUCER_CONSUMER`` — a dominant writer whose epochs are read by a
  recurring set of consumers.
* ``WIDE_SHARING``  — epochs read by many nodes at once (more than
  ``wide_threshold`` readers on average).
* ``UNSHARED``    — no epoch ever has a remote reader (private or
  effectively private data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List

from repro.trace.events import SharingTrace
from repro.util.bitmaps import popcount


class SharingPattern(Enum):
    """Weber & Gupta-style block-level sharing categories."""

    UNSHARED = "unshared"
    READ_ONLY = "read-only"
    MIGRATORY = "migratory"
    PRODUCER_CONSUMER = "producer-consumer"
    WIDE_SHARING = "wide-sharing"


@dataclass
class BlockProfile:
    """Raw per-block statistics the classifier derives patterns from."""

    block: int
    events: int = 0
    writers: set = field(default_factory=set)
    total_readers: int = 0
    epochs_with_readers: int = 0
    max_readers: int = 0
    reader_sets: List[int] = field(default_factory=list)

    @property
    def mean_readers(self) -> float:
        return self.total_readers / self.events if self.events else 0.0

    @property
    def reader_set_stability(self) -> float:
        """Fraction of consecutive epoch pairs with identical reader sets.

        1.0 means perfectly recurring consumers -- the producer-consumer
        signature; migratory blocks score near 0 because the single reader
        (the next writer) changes hand to hand.
        """
        shared = [bitmap for bitmap in self.reader_sets if bitmap]
        if len(shared) < 2:
            return 0.0
        repeats = sum(1 for a, b in zip(shared, shared[1:]) if a == b)
        return repeats / (len(shared) - 1)


def profile_blocks(trace: SharingTrace) -> Dict[int, BlockProfile]:
    """Accumulate per-block statistics over a trace."""
    profiles: Dict[int, BlockProfile] = {}
    for event in trace.events():
        profile = profiles.get(event.block)
        if profile is None:
            profile = BlockProfile(block=event.block)
            profiles[event.block] = profile
        readers = popcount(event.truth)
        profile.events += 1
        profile.writers.add(event.writer)
        profile.total_readers += readers
        profile.max_readers = max(profile.max_readers, readers)
        if readers:
            profile.epochs_with_readers += 1
        profile.reader_sets.append(event.truth)
    return profiles


def classify_block(
    profile: BlockProfile,
    wide_threshold: int = 4,
    stability_threshold: float = 0.5,
) -> SharingPattern:
    """Assign one pattern to a block profile.

    The precedence order matters: wide sharing trumps everything (many
    readers is the defining observable); then stability separates
    producer-consumer from migratory; single-writer blocks with recurring
    readers are producer-consumer even at one reader per epoch.
    """
    if profile.total_readers == 0:
        if profile.events <= 1 or len(profile.writers) == 1:
            return SharingPattern.UNSHARED
        return SharingPattern.MIGRATORY  # written around, never read: token-like
    if profile.events == 1:
        # a single write epoch whose value is then only read
        return (
            SharingPattern.WIDE_SHARING
            if profile.max_readers >= wide_threshold
            else SharingPattern.READ_ONLY
        )
    if profile.mean_readers >= wide_threshold:
        return SharingPattern.WIDE_SHARING
    if len(profile.writers) == 1:
        return SharingPattern.PRODUCER_CONSUMER
    if profile.reader_set_stability >= stability_threshold:
        return SharingPattern.PRODUCER_CONSUMER
    return SharingPattern.MIGRATORY


@dataclass(frozen=True)
class PatternCensus:
    """Pattern mix of a trace, by block count and by event count."""

    blocks: Dict[SharingPattern, int]
    events: Dict[SharingPattern, int]

    def block_fraction(self, pattern: SharingPattern) -> float:
        total = sum(self.blocks.values())
        return self.blocks.get(pattern, 0) / total if total else 0.0

    def event_fraction(self, pattern: SharingPattern) -> float:
        total = sum(self.events.values())
        return self.events.get(pattern, 0) / total if total else 0.0

    def dominant(self) -> SharingPattern:
        """The pattern carrying the most prediction events."""
        if not self.events:
            return SharingPattern.UNSHARED
        return max(self.events, key=lambda pattern: self.events[pattern])


def census(trace: SharingTrace, wide_threshold: int = 4) -> PatternCensus:
    """Classify every block of a trace and tally the mix."""
    blocks: Dict[SharingPattern, int] = {}
    events: Dict[SharingPattern, int] = {}
    for profile in profile_blocks(trace).values():
        pattern = classify_block(profile, wide_threshold=wide_threshold)
        blocks[pattern] = blocks.get(pattern, 0) + 1
        events[pattern] = events.get(pattern, 0) + profile.events
    return PatternCensus(blocks=blocks, events=events)
