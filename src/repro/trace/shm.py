"""Shared-memory trace transport: publish once, map everywhere.

The parallel engine's unit of work is tiny (a scheme description) but its
working set is not: every worker needs the full benchmark trace suite.  The
original transport pickled each :class:`~repro.trace.events.SharingTrace`
into every worker's initializer, copying tens of megabytes per worker per
batch.  This module moves the *metadata* instead, the way directory-based
predictors move sharing bitmaps rather than cache lines:

* :func:`publish_traces` copies each trace's numpy arrays once into a
  ``multiprocessing.shared_memory`` segment and returns pickle-flat
  :class:`TraceDescriptor` records (segment name, per-field offsets/dtypes,
  and a content fingerprint);
* :func:`attach_trace` maps the segment in a worker and rebuilds the trace
  as **zero-copy** numpy views over the shared buffer -- no per-worker
  copies, no deserialization, attachment keyed and verified by the trace
  fingerprint;
* the publisher owns the segment's lifetime: :meth:`PublishedTraces.close`
  unlinks every segment after the worker pool has drained.

Shared memory is an optimization, never a requirement.  :func:`shm_enabled`
gates the transport behind the ``REPRO_SHM`` environment variable (set
``REPRO_SHM=0`` to force the pickle path), and any ``OSError`` while
publishing (no ``/dev/shm``, exhausted segment quota, sandboxed platform)
is reported to the caller so it can fall back to pickling the traces --
the two transports are bit-identical by construction and both are exercised
against the golden fixtures in ``tests/golden``.

Telemetry: the publisher records ``shm.publishes``, ``shm.bytes_published``
and ``shm.unlinks``; transport selection records ``shm.fallbacks`` at the
call site that degrades.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.machine import MachineSpec
from repro.telemetry import get_telemetry
from repro.trace.events import SharingTrace

try:  # pragma: no cover - present on every supported CPython
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic minimal builds
    _shared_memory = None

#: the array fields of a SharingTrace, in serialization order
TRACE_FIELDS: Tuple[str, ...] = (
    "writer",
    "pc",
    "home",
    "block",
    "truth",
    "inval",
    "has_inval",
    "close",
)


def shm_available() -> bool:
    """True when the interpreter ships ``multiprocessing.shared_memory``."""
    return _shared_memory is not None


def shm_enabled() -> bool:
    """Whether the shared-memory transport is switched on.

    Controlled by ``REPRO_SHM``: unset or truthy means on, any of
    ``0/false/off/no`` (case-insensitive) means off.  Availability of the
    underlying primitive is checked separately (:func:`shm_available`).
    """
    raw = os.environ.get("REPRO_SHM", "").strip().lower()
    if raw in ("0", "false", "off", "no"):
        return False
    return True


def trace_fingerprint(trace: SharingTrace) -> str:
    """A content hash identifying a trace's exact arrays and shape.

    Workers verify it after attaching, so a stale or recycled segment name
    can never silently feed a different trace into an evaluation.
    """
    digest = hashlib.sha256()
    digest.update(f"nodes={trace.num_nodes};name={trace.name};".encode("utf-8"))
    # Traces generated without a spec (the paper-default machine) keep the
    # historical fingerprint so pre-existing caches and fixtures stay valid.
    if trace.machine is not None:
        digest.update(f"machine={trace.machine.trace_label()};".encode("utf-8"))
    for field in TRACE_FIELDS:
        array = np.ascontiguousarray(getattr(trace, field))
        digest.update(field.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class _FieldLayout:
    """Where one trace array lives inside its shared segment.

    ``words`` is 0 for 1-D fields; packed bitmap columns on >64-node
    machines are 2-D ``(length, words)`` arrays.
    """

    offset: int
    length: int
    dtype: str
    words: int = 0


@dataclass(frozen=True)
class TraceDescriptor:
    """Everything a worker needs to map one published trace.

    Pickle-flat (strings and ints only), a few hundred bytes regardless of
    trace size -- this is what crosses the process boundary instead of the
    arrays themselves.
    """

    segment: str
    trace_name: str
    num_nodes: int
    num_events: int
    fingerprint: str
    fields: Dict[str, _FieldLayout]
    machine: str = ""  # MachineSpec JSON, "" when the trace carries none


class PublishedTraces:
    """Owner of the shared segments backing one batch's trace suite."""

    def __init__(self) -> None:
        self.descriptors: List[TraceDescriptor] = []
        self._segments: List["_shared_memory.SharedMemory"] = []
        self._closed = False

    def close(self) -> None:
        """Close and unlink every segment (idempotent).

        Call only after the consuming worker pool has shut down; on POSIX
        an unlink while workers still hold mappings is also safe (the
        segment disappears when the last mapping closes).
        """
        if self._closed:
            return
        self._closed = True
        telemetry = get_telemetry()
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
                telemetry.count("shm.unlinks")
            except (FileNotFoundError, OSError):  # already reclaimed
                pass
        self._segments.clear()

    def __enter__(self) -> "PublishedTraces":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort leak guard
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass


def _field_specs(num_events: int, num_nodes: int) -> Dict[str, Tuple[tuple, np.dtype]]:
    """Canonical ``field -> (shape, dtype)`` for a trace of known size.

    What lets a publisher size a segment before seeing any data -- the
    shapes depend only on event count and machine width.
    """
    from repro.util.bitmaps import bitmap_layout

    layout = bitmap_layout(num_nodes)
    bitmap_shape = (
        (num_events, layout.n_words) if layout.packed else (num_events,)
    )
    int_col = ((num_events,), np.dtype(np.int64))
    return {
        "writer": int_col,
        "pc": int_col,
        "home": int_col,
        "block": int_col,
        "truth": (bitmap_shape, np.dtype(layout.dtype)),
        "inval": (bitmap_shape, np.dtype(layout.dtype)),
        "has_inval": ((num_events,), np.dtype(bool)),
        "close": int_col,
    }


def _publish_one(published: PublishedTraces, trace) -> int:
    """Publish one trace (resident or source) into a fresh segment.

    A :class:`~repro.trace.source.TraceSource` is copied **chunk-wise**:
    the segment is sized from the source's header, each chunk's columns
    land directly in their shared-memory slots, and the descriptor
    fingerprint is computed over zero-copy views of the filled segment --
    the trace never materializes in the publisher's heap.  Returns the
    published byte count.
    """
    from repro.trace.source import TraceSource

    streaming = isinstance(trace, TraceSource)
    num_events = len(trace)
    specs = _field_specs(num_events, trace.num_nodes)
    if not streaming:
        for field, (shape, dtype) in specs.items():
            array = np.ascontiguousarray(getattr(trace, field))
            if array.shape != shape or array.dtype != dtype:
                specs[field] = (array.shape, array.dtype)
    total = sum(
        int(np.prod(shape)) * dtype.itemsize for shape, dtype in specs.values()
    )
    segment = _shared_memory.SharedMemory(create=True, size=max(1, total))
    published._segments.append(segment)
    fields: Dict[str, _FieldLayout] = {}
    views: Dict[str, np.ndarray] = {}
    offset = 0
    for field, (shape, dtype) in specs.items():
        views[field] = np.ndarray(
            shape, dtype=dtype, buffer=segment.buf, offset=offset
        )
        fields[field] = _FieldLayout(
            offset=offset,
            length=shape[0],
            dtype=str(dtype),
            words=shape[1] if len(shape) == 2 else 0,
        )
        offset += views[field].nbytes
    if streaming:
        filled = 0
        for chunk in trace.chunks():
            stop = filled + len(chunk)
            for field in TRACE_FIELDS:
                views[field][filled:stop] = getattr(chunk, field)
            filled = stop
        if filled != num_events:
            raise ValueError(
                f"source {trace.name!r} yielded {filled} events, "
                f"header promised {num_events}"
            )
    else:
        for field in TRACE_FIELDS:
            views[field][:] = getattr(trace, field)
    # Fingerprint the shared buffer itself (zero-copy views) so streamed
    # and resident publishes of the same content produce the same
    # descriptor -- workers verify against it after attaching.
    shared_trace = SharingTrace(
        num_nodes=trace.num_nodes,
        name=trace.name,
        machine=trace.machine,
        **views,
    )
    published.descriptors.append(
        TraceDescriptor(
            segment=segment.name,
            trace_name=trace.name,
            num_nodes=trace.num_nodes,
            num_events=num_events,
            fingerprint=trace_fingerprint(shared_trace),
            fields=fields,
            machine=(
                trace.machine.to_json() if trace.machine is not None else ""
            ),
        )
    )
    return total


def publish_traces(traces: Sequence) -> PublishedTraces:
    """Copy each trace's arrays into one shared segment per trace.

    Accepts resident :class:`SharingTrace` objects and streaming
    :class:`~repro.trace.source.TraceSource` instances; sources fill their
    segment chunk by chunk, so publishing a file-backed trace peaks at one
    chunk of heap, not one trace.  Returns a :class:`PublishedTraces`
    whose ``descriptors`` parallel the input order.  The caller owns
    cleanup via :meth:`PublishedTraces.close`.

    Raises:
        RuntimeError: shared memory is unavailable on this interpreter.
        OSError: the platform refused a segment (no ``/dev/shm``, quota) --
            callers should fall back to the pickle transport.
    """
    if _shared_memory is None:
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    telemetry = get_telemetry()
    published = PublishedTraces()
    try:
        for trace in traces:
            total = _publish_one(published, trace)
            telemetry.count("shm.publishes")
            telemetry.count("shm.bytes_published", total)
    except BaseException:
        published.close()
        raise
    return published


class AttachedTrace:
    """A worker-side zero-copy view of one published trace.

    Holds the :class:`SharedMemory` mapping open for as long as the trace
    views are alive; :meth:`close` drops the mapping (views become invalid).

    On CPython < 3.13 attaching re-registers the segment with the resource
    tracker; that is harmless here because pool workers share the parent's
    tracker process (registration is idempotent and the publisher's unlink
    clears the one entry), and it doubles as a leak guard if the publisher
    is killed before unlinking.
    """

    def __init__(self, descriptor: TraceDescriptor):
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self.descriptor = descriptor
        self._segment = _shared_memory.SharedMemory(name=descriptor.segment)
        arrays = {}
        for field in TRACE_FIELDS:
            layout = descriptor.fields[field]
            shape = (
                (layout.length, layout.words) if layout.words else (layout.length,)
            )
            arrays[field] = np.ndarray(
                shape,
                dtype=np.dtype(layout.dtype),
                buffer=self._segment.buf,
                offset=layout.offset,
            )
        # SharingTrace's asarray calls are no-ops for same-dtype arrays, so
        # the constructed trace aliases the shared buffer directly.
        self.trace = SharingTrace(
            num_nodes=descriptor.num_nodes,
            name=descriptor.trace_name,
            machine=(
                MachineSpec.from_json(descriptor.machine)
                if descriptor.machine
                else None
            ),
            **arrays,
        )
        actual = trace_fingerprint(self.trace)
        if actual != descriptor.fingerprint:
            self.close()
            raise ValueError(
                f"shared trace {descriptor.segment} fingerprint mismatch: "
                f"{actual} != {descriptor.fingerprint}"
            )

    def close(self) -> None:
        try:
            self._segment.close()
        except OSError:  # pragma: no cover - double close
            pass


def attach_trace(descriptor: TraceDescriptor) -> AttachedTrace:
    """Map one published trace into this process, zero-copy and verified."""
    return AttachedTrace(descriptor)
