"""Trace persistence.

Traces are expensive to generate (a full protocol simulation) and cheap to
store, so the harness caches them as ``.npz`` files.  A human-readable text
format is also provided for debugging and for importing traces produced by
other tools.
"""

from __future__ import annotations

import io
import os
import zipfile
from typing import Union

import numpy as np

from repro.machine import MachineSpec
from repro.telemetry import get_telemetry
from repro.trace.events import SharingTrace
from repro.util.persist import CacheCorruptionError, atomic_write_bytes

_FORMAT_VERSION = 1

#: arrays every trace archive must contain
_REQUIRED_FIELDS = (
    "version",
    "num_nodes",
    "name",
    "writer",
    "pc",
    "home",
    "block",
    "truth",
    "inval",
    "has_inval",
    "close",
)


class TraceFormatError(CacheCorruptionError, ValueError):
    """A trace file is truncated, not an npz archive, or schema-stale.

    Doubles as a :class:`ValueError` for callers that validate formats and
    as a :class:`~repro.util.persist.CacheCorruptionError` for the cache
    layer, which treats it as a miss and regenerates.
    """


def save_trace(trace: SharingTrace, path: Union[str, os.PathLike]) -> None:
    """Write a trace as a compressed ``.npz`` archive, atomically.

    The archive is serialized in memory and moved into place with
    ``os.replace``, so a crashed writer can never leave a truncated trace
    behind for the next reader to trip over.
    """
    telemetry = get_telemetry()
    with telemetry.timer("trace.io.save_seconds"):
        arrays = dict(
            version=np.int64(_FORMAT_VERSION),
            num_nodes=np.int64(trace.num_nodes),
            name=np.array(trace.name),
            writer=trace.writer,
            pc=trace.pc,
            home=trace.home,
            block=trace.block,
            truth=trace.truth,
            inval=trace.inval,
            has_inval=trace.has_inval,
            close=trace.close,
        )
        # The machine spec is an *optional* member: traces written before
        # MachineSpec existed (and traces generated without one) omit it,
        # and the loader treats absence as "paper-default machine".
        if trace.machine is not None:
            arrays["machine"] = np.array(trace.machine.to_json())
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        atomic_write_bytes(path, buffer.getvalue())
    telemetry.count("trace.io.saves")
    telemetry.count("trace.io.events_saved", len(trace))


def load_trace(path: Union[str, os.PathLike]) -> SharingTrace:
    """Load a trace written by :func:`save_trace`, verifying its invariants.

    Raises:
        TraceFormatError: the file is not a readable npz archive, is missing
            required arrays, was written under a different format version,
            or fails the trace consistency checks.
    """
    telemetry = get_telemetry()
    try:
        with telemetry.timer("trace.io.load_seconds"):
            trace = _load_trace_checked(path)
    except TraceFormatError:
        telemetry.count("trace.io.load_failures")
        raise
    telemetry.count("trace.io.loads")
    telemetry.count("trace.io.events_loaded", len(trace))
    return trace


def _load_trace_checked(path: Union[str, os.PathLike]) -> SharingTrace:
    try:
        with np.load(path, allow_pickle=False) as archive:
            missing = [field for field in _REQUIRED_FIELDS if field not in archive]
            if missing:
                raise TraceFormatError(
                    f"trace file {path} is missing fields {missing}"
                )
            version = int(archive["version"])
            if version != _FORMAT_VERSION:
                raise TraceFormatError(
                    f"unsupported trace format version {version} in {path}"
                )
            machine = None
            if "machine" in archive:
                machine = MachineSpec.from_json(str(archive["machine"]))
            trace = SharingTrace(
                num_nodes=int(archive["num_nodes"]),
                writer=archive["writer"],
                pc=archive["pc"],
                home=archive["home"],
                block=archive["block"],
                truth=archive["truth"],
                inval=archive["inval"],
                has_inval=archive["has_inval"],
                close=archive["close"],
                name=str(archive["name"]),
                machine=machine,
            )
    except TraceFormatError:
        raise
    except (zipfile.BadZipFile, OSError, KeyError, ValueError, EOFError) as error:
        # BadZipFile: not a zip; OSError/EOFError: truncated or unreadable;
        # KeyError/ValueError: member arrays absent or malformed.
        raise TraceFormatError(f"unreadable trace file {path}: {error}") from error
    try:
        trace.check_consistency()
    except (ValueError, AssertionError) as error:
        raise TraceFormatError(
            f"trace file {path} violates trace invariants: {error}"
        ) from error
    return trace


def dump_text(trace: SharingTrace, path: Union[str, os.PathLike]) -> None:
    """Write a trace as one whitespace-separated line per event.

    Columns: writer pc home block truth inval has_inval close (bitmaps in
    hex).  Meant for eyeballing and cross-tool exchange, not bulk storage.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# sharing-trace v{_FORMAT_VERSION} nodes={trace.num_nodes} "
                     f"name={trace.name}\n")
        if trace.machine is not None:
            handle.write(f"# machine={trace.machine.to_json()}\n")
        handle.write("# writer pc home block truth inval has_inval close\n")
        for event in trace.events():
            handle.write(
                f"{event.writer} {event.pc} {event.home} {event.block} "
                f"{event.truth:#x} {event.inval:#x} {int(event.has_inval)} "
                f"{event.close}\n"
            )


def parse_text(path: Union[str, os.PathLike]) -> SharingTrace:
    """Read a trace written by :func:`dump_text`."""
    num_nodes = None
    name = "trace"
    machine = None
    rows = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].split():
                    if token.startswith("nodes="):
                        num_nodes = int(token.split("=", 1)[1])
                    elif token.startswith("name="):
                        name = token.split("=", 1)[1]
                    elif token.startswith("machine="):
                        # compact JSON is whitespace-free, so one token
                        machine = MachineSpec.from_json(token.split("=", 1)[1])
                continue
            fields = line.split()
            if len(fields) != 8:
                raise ValueError(f"malformed trace line: {line!r}")
            rows.append(
                (
                    int(fields[0]),
                    int(fields[1]),
                    int(fields[2]),
                    int(fields[3]),
                    int(fields[4], 16),
                    int(fields[5], 16),
                    bool(int(fields[6])),
                    int(fields[7]),
                )
            )
    if num_nodes is None:
        raise ValueError("trace text is missing the 'nodes=' header")
    trace = SharingTrace(
        num_nodes=num_nodes,
        writer=[row[0] for row in rows],
        pc=[row[1] for row in rows],
        home=[row[2] for row in rows],
        block=[row[3] for row in rows],
        truth=[row[4] for row in rows],
        inval=[row[5] for row in rows],
        has_inval=[row[6] for row in rows],
        close=[row[7] for row in rows],
        name=name,
        machine=machine,
    )
    trace.check_consistency()
    return trace
