"""Trace persistence.

Traces are expensive to generate (a full protocol simulation) and cheap to
store, so the harness caches them as ``.npz`` files.  A human-readable text
format is also provided for debugging and for importing traces produced by
other tools.
"""

from __future__ import annotations

import io
import os
import zipfile
from typing import IO, Iterator, Optional, Union

import numpy as np

from repro.machine import MachineSpec
from repro.telemetry import get_telemetry
from repro.trace.events import SharingTrace
from repro.trace.source import (
    CHUNK_FIELDS,
    DEFAULT_CHUNK_EVENTS,
    StreamingConsistencyChecker,
    TraceChunk,
    TraceSource,
    as_source,
)
from repro.util.bitmaps import bitmap_layout
from repro.util.persist import CacheCorruptionError, atomic_write_bytes

_FORMAT_VERSION = 1

#: arrays every trace archive must contain
_REQUIRED_FIELDS = (
    "version",
    "num_nodes",
    "name",
    "writer",
    "pc",
    "home",
    "block",
    "truth",
    "inval",
    "has_inval",
    "close",
)


class TraceFormatError(CacheCorruptionError, ValueError):
    """A trace file is truncated, not an npz archive, or schema-stale.

    Doubles as a :class:`ValueError` for callers that validate formats and
    as a :class:`~repro.util.persist.CacheCorruptionError` for the cache
    layer, which treats it as a miss and regenerates.
    """


def save_trace(trace: SharingTrace, path: Union[str, os.PathLike]) -> None:
    """Write a trace as a compressed ``.npz`` archive, atomically.

    The archive is serialized in memory and moved into place with
    ``os.replace``, so a crashed writer can never leave a truncated trace
    behind for the next reader to trip over.
    """
    telemetry = get_telemetry()
    with telemetry.timer("trace.io.save_seconds"):
        arrays = dict(
            version=np.int64(_FORMAT_VERSION),
            num_nodes=np.int64(trace.num_nodes),
            name=np.array(trace.name),
            writer=trace.writer,
            pc=trace.pc,
            home=trace.home,
            block=trace.block,
            truth=trace.truth,
            inval=trace.inval,
            has_inval=trace.has_inval,
            close=trace.close,
        )
        # The machine spec is an *optional* member: traces written before
        # MachineSpec existed (and traces generated without one) omit it,
        # and the loader treats absence as "paper-default machine".
        if trace.machine is not None:
            arrays["machine"] = np.array(trace.machine.to_json())
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        atomic_write_bytes(path, buffer.getvalue())
    telemetry.count("trace.io.saves")
    telemetry.count("trace.io.events_saved", len(trace))


def load_trace(path: Union[str, os.PathLike]) -> SharingTrace:
    """Load a trace written by :func:`save_trace`, verifying its invariants.

    Raises:
        TraceFormatError: the file is not a readable npz archive, is missing
            required arrays, was written under a different format version,
            or fails the trace consistency checks.
    """
    telemetry = get_telemetry()
    try:
        with telemetry.timer("trace.io.load_seconds"):
            trace = _load_trace_checked(path)
    except TraceFormatError:
        telemetry.count("trace.io.load_failures")
        raise
    telemetry.count("trace.io.loads")
    telemetry.count("trace.io.events_loaded", len(trace))
    return trace


def _load_trace_checked(path: Union[str, os.PathLike]) -> SharingTrace:
    try:
        with np.load(path, allow_pickle=False) as archive:
            missing = [field for field in _REQUIRED_FIELDS if field not in archive]
            if missing:
                raise TraceFormatError(
                    f"trace file {path} is missing fields {missing}"
                )
            version = int(archive["version"])
            if version != _FORMAT_VERSION:
                raise TraceFormatError(
                    f"unsupported trace format version {version} in {path}"
                )
            machine = None
            if "machine" in archive:
                machine = MachineSpec.from_json(str(archive["machine"]))
            trace = SharingTrace(
                num_nodes=int(archive["num_nodes"]),
                writer=archive["writer"],
                pc=archive["pc"],
                home=archive["home"],
                block=archive["block"],
                truth=archive["truth"],
                inval=archive["inval"],
                has_inval=archive["has_inval"],
                close=archive["close"],
                name=str(archive["name"]),
                machine=machine,
            )
    except TraceFormatError:
        raise
    except (zipfile.BadZipFile, OSError, KeyError, ValueError, EOFError) as error:
        # BadZipFile: not a zip; OSError/EOFError: truncated or unreadable;
        # KeyError/ValueError: member arrays absent or malformed.
        raise TraceFormatError(f"unreadable trace file {path}: {error}") from error
    try:
        trace.check_consistency()
    except (ValueError, AssertionError) as error:
        raise TraceFormatError(
            f"trace file {path} violates trace invariants: {error}"
        ) from error
    return trace


def dump_text(
    trace: Union[SharingTrace, TraceSource], path: Union[str, os.PathLike]
) -> None:
    """Write a trace (or source) as one whitespace-separated line per event.

    Columns: writer pc home block truth inval has_inval close (bitmaps in
    hex).  Meant for eyeballing and cross-tool exchange, not bulk storage.
    Streams chunk by chunk, so a file-backed source exports at O(chunk)
    memory.
    """
    source = as_source(trace)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# sharing-trace v{_FORMAT_VERSION} nodes={source.num_nodes} "
                     f"name={source.name}\n")
        if source.machine is not None:
            handle.write(f"# machine={source.machine.to_json()}\n")
        handle.write("# writer pc home block truth inval has_inval close\n")
        for chunk in source.chunks():
            writers = chunk.writer.tolist()
            pcs = chunk.pc.tolist()
            homes = chunk.home.tolist()
            blocks = chunk.block.tolist()
            truths = chunk.truth_ints()
            invals = chunk.inval_ints()
            has_invals = chunk.has_inval.tolist()
            closes = chunk.close.tolist()
            for index in range(len(writers)):
                handle.write(
                    f"{writers[index]} {pcs[index]} {homes[index]} "
                    f"{blocks[index]} {truths[index]:#x} {invals[index]:#x} "
                    f"{int(has_invals[index])} {closes[index]}\n"
                )


class TextTraceReader:
    """Single-pass streaming reader for the v1 text trace format.

    Consumes header lines up front (so ``num_nodes``/``name``/``machine``
    are available before any data is read), then yields the event rows as
    columnar :class:`~repro.trace.source.TraceChunk` windows.  Malformed
    lines raise :class:`TraceFormatError` -- a :class:`ValueError`
    subclass, so callers of the old materializing parser keep working --
    as does a missing ``nodes=`` header.
    """

    def __init__(self, handle: IO[str], path: Union[str, os.PathLike] = "<text>"):
        self._handle = handle
        self._path = os.fspath(path)
        self.num_nodes: Optional[int] = None
        self.name = "trace"
        self.machine: Optional[MachineSpec] = None
        self._first_row: Optional[str] = None
        for line in handle:
            text = line.strip()
            if not text:
                continue
            if text.startswith("#"):
                for token in text[1:].split():
                    if token.startswith("nodes="):
                        self.num_nodes = int(token.split("=", 1)[1])
                    elif token.startswith("name="):
                        self.name = token.split("=", 1)[1]
                    elif token.startswith("machine="):
                        # compact JSON is whitespace-free, so one token
                        self.machine = MachineSpec.from_json(
                            token.split("=", 1)[1]
                        )
                continue
            self._first_row = text
            break
        if self.num_nodes is None:
            raise TraceFormatError("trace text is missing the 'nodes=' header")
        self.layout = bitmap_layout(self.num_nodes)

    def chunks(
        self, chunk_events: int = DEFAULT_CHUNK_EVENTS
    ) -> Iterator[TraceChunk]:
        """Yield the data rows as column chunks (single pass)."""
        if chunk_events < 1:
            raise ValueError(f"chunk_events must be positive, got {chunk_events}")
        columns: list = [[] for _ in CHUNK_FIELDS]
        start = 0

        def build() -> TraceChunk:
            assert self.num_nodes is not None
            chunk = TraceChunk(
                num_nodes=self.num_nodes,
                start=start,
                writer=np.asarray(columns[0], dtype=np.int64),
                pc=np.asarray(columns[1], dtype=np.int64),
                home=np.asarray(columns[2], dtype=np.int64),
                block=np.asarray(columns[3], dtype=np.int64),
                truth=self.layout.asarray(columns[4]),
                inval=self.layout.asarray(columns[5]),
                has_inval=np.asarray(columns[6], dtype=bool),
                close=np.asarray(columns[7], dtype=np.int64),
                name=self.name,
                machine=self.machine,
            )
            return chunk

        def rows() -> Iterator[str]:
            if self._first_row is not None:
                yield self._first_row
                self._first_row = None
            for line in self._handle:
                text = line.strip()
                if not text or text.startswith("#"):
                    continue
                yield text

        for text in rows():
            fields = text.split()
            if len(fields) != 8:
                raise TraceFormatError(f"malformed trace line: {text!r}")
            try:
                columns[0].append(int(fields[0]))
                columns[1].append(int(fields[1]))
                columns[2].append(int(fields[2]))
                columns[3].append(int(fields[3]))
                columns[4].append(int(fields[4], 16))
                columns[5].append(int(fields[5], 16))
                columns[6].append(bool(int(fields[6])))
                columns[7].append(int(fields[7]))
            except ValueError as error:
                raise TraceFormatError(
                    f"malformed trace line: {text!r}"
                ) from error
            if len(columns[0]) == chunk_events:
                yield build()
                start += chunk_events
                columns = [[] for _ in CHUNK_FIELDS]
        if columns[0]:
            yield build()


def parse_text(path: Union[str, os.PathLike]) -> SharingTrace:
    """Read a trace written by :func:`dump_text`.

    Streams line-by-line through :class:`TextTraceReader` -- rows land
    directly in columnar chunks (never a per-row tuple list), and the
    trace invariants are verified by the single-pass streaming checker
    as chunks arrive.
    """
    parts: dict = {field: [] for field in CHUNK_FIELDS}
    with open(path, "r", encoding="utf-8") as handle:
        reader = TextTraceReader(handle, path=path)
        checker = StreamingConsistencyChecker(reader.num_nodes)
        try:
            for chunk in reader.chunks():
                checker.feed(chunk)
                for field in CHUNK_FIELDS:
                    parts[field].append(getattr(chunk, field))
            checker.finish()
        except TraceFormatError:
            raise
        except ValueError as error:
            raise TraceFormatError(
                f"trace text {path} violates trace invariants: {error}"
            ) from error
    layout = reader.layout
    if parts["writer"]:
        columns = {field: np.concatenate(parts[field]) for field in CHUNK_FIELDS}
    else:
        columns = {
            field: (
                layout.zeros(0)
                if field in ("truth", "inval")
                else np.zeros(0, dtype=bool if field == "has_inval" else np.int64)
            )
            for field in CHUNK_FIELDS
        }
    return SharingTrace(
        num_nodes=reader.num_nodes,
        name=reader.name,
        machine=reader.machine,
        **columns,
    )
