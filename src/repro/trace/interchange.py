"""The ``.rtrace`` on-disk trace interchange format.

A versioned, streaming, checksummed container for sharing traces at
scales where the resident ``.npz`` round-trip stops being viable
(millions of events): a :class:`TraceWriter` appends columnar chunk
segments as they are produced, a :class:`TraceReader` iterates them back
without ever holding more than one chunk, and :class:`FileTraceSource`
plugs the file straight into the :class:`~repro.trace.source.TraceSource`
pipeline (engines, stats, traffic replay).

File layout (all JSON lines are UTF-8, ``\\n``-terminated)::

    #rtrace1\\n                                      magic (9 bytes)
    {"schema": 1, "nodes": ..., "name": ...,        header line
     "machine": <MachineSpec.to_json() or null>,
     "bitmap_dtype": "uint32", "bitmap_words": 1}
    {"events": n, "nbytes": m, "crc": c}\\n           chunk record
    <m bytes: writer|pc|home|block|truth|inval|      chunk payload
     has_inval|close, concatenated C-contiguous>     (repeated)
    {"end": true, "events": N, "chunks": C,          footer line
     "fingerprint": "..."}
    <8-byte LE footer-line length> #rtrace1\\n        trailer (17 bytes)

The fixed-size trailer makes the header *and* footer readable in O(1):
``TraceReader`` knows the event count and content fingerprint without
touching the chunk data, which is what lets caches, journals, and the
remote transport key on a multi-gigabyte file for the cost of two
seeks.  Every chunk payload carries a CRC-32; a torn tail, a flipped
byte, or a stale schema all surface as
:class:`~repro.trace.io.TraceFormatError`, which the cache layer
(``util/persist.py``) already treats as "warn, discard, regenerate".

Writers stream into a same-directory temporary file and ``os.replace``
into place on :meth:`TraceWriter.close`, so a crashed import can never
leave a half-written ``.rtrace`` where a reader will find it -- the same
atomicity contract as :func:`repro.util.persist.atomic_write_bytes`.

The module doubles as the importer CLI (``repro-trace`` /
``python -m repro.trace.interchange``): see EXPERIMENTS.md for the
external CSV column contract.
"""

from __future__ import annotations

import argparse
import json
import os
import struct
import sys
import tempfile
import zlib
from typing import IO, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.machine import MachineSpec
from repro.telemetry import get_telemetry
from repro.trace.builder import StreamingTraceBuilder
from repro.trace.events import SharingTrace
from repro.trace.io import TextTraceReader, TraceFormatError
from repro.trace.source import (
    CHUNK_FIELDS,
    DEFAULT_CHUNK_EVENTS,
    StreamFingerprinter,
    StreamingConsistencyChecker,
    TraceChunk,
    TraceSource,
    as_source,
    rechunk,
)
from repro.util.bitmaps import bitmap_layout

#: bump when the container layout changes incompatibly; readers refuse
#: other schemas with a TraceFormatError so stale files regenerate
RTRACE_SCHEMA = 1

MAGIC = b"#rtrace1\n"

_TRAILER_SIZE = 8 + len(MAGIC)

PathLike = Union[str, os.PathLike]


def _chunk_nbytes(events: int, n_words: int, itemsize: int) -> int:
    """The exact payload size of a chunk with ``events`` events."""
    # writer + pc + home + block + close: int64; has_inval: 1 byte;
    # truth + inval: n_words bitmap words each
    return events * (5 * 8 + 1) + 2 * events * n_words * itemsize


class TraceWriter:
    """Streaming ``.rtrace`` writer: append column batches, then close.

    Each :meth:`write_columns` / :meth:`write_chunk` call becomes one
    self-describing chunk segment; the content fingerprint accumulates
    incrementally, so closing is O(1) regardless of trace size.  The
    file appears at ``path`` only on a successful :meth:`close`.
    """

    def __init__(
        self,
        path: PathLike,
        num_nodes: int,
        name: str = "trace",
        machine: Optional[MachineSpec] = None,
    ):
        self.path = os.fspath(path)
        self.num_nodes = num_nodes
        self.name = name
        self.machine = machine
        self.layout = bitmap_layout(num_nodes)
        self._fingerprinter = StreamFingerprinter(num_nodes, name=name, machine=machine)
        self._events = 0
        self._chunks = 0
        self._closed = False
        directory = os.path.dirname(self.path) or "."
        fd, self._tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(self.path) + ".", suffix=".tmp"
        )
        self._handle: Optional[IO[bytes]] = os.fdopen(fd, "wb")
        header = {
            "schema": RTRACE_SCHEMA,
            "nodes": num_nodes,
            "name": name,
            "machine": machine.to_json() if machine is not None else None,
            "bitmap_dtype": str(np.dtype(self.layout.dtype)),
            "bitmap_words": self.layout.n_words,
        }
        self._handle.write(MAGIC)
        self._handle.write(_json_line(header))

    @property
    def events_written(self) -> int:
        return self._events

    def write_columns(
        self,
        writer,
        pc,
        home,
        block,
        truth,
        inval,
        has_inval,
        close,
    ) -> None:
        """Append one chunk of events given as eight parallel columns.

        Accepts anything array-like; bitmap columns may be Python-int
        sequences (packed via the machine's
        :class:`~repro.util.bitmaps.BitmapLayout`).  ``close`` indices
        must be absolute.
        """
        if self._handle is None:
            raise ValueError("TraceWriter is closed")
        layout = self.layout
        columns = (
            np.ascontiguousarray(np.asarray(writer, dtype=np.int64)),
            np.ascontiguousarray(np.asarray(pc, dtype=np.int64)),
            np.ascontiguousarray(np.asarray(home, dtype=np.int64)),
            np.ascontiguousarray(np.asarray(block, dtype=np.int64)),
            np.ascontiguousarray(layout.asarray(truth)),
            np.ascontiguousarray(layout.asarray(inval)),
            np.ascontiguousarray(np.asarray(has_inval, dtype=bool)),
            np.ascontiguousarray(np.asarray(close, dtype=np.int64)),
        )
        events = len(columns[0])
        for field, column in zip(CHUNK_FIELDS, columns):
            if len(column) != events:
                raise ValueError(
                    f"column {field!r} has {len(column)} events, expected {events}"
                )
        if events == 0:
            return
        chunk = TraceChunk(
            num_nodes=self.num_nodes,
            start=self._events,
            writer=columns[0],
            pc=columns[1],
            home=columns[2],
            block=columns[3],
            truth=columns[4],
            inval=columns[5],
            has_inval=columns[6],
            close=columns[7],
            name=self.name,
            machine=self.machine,
        )
        self._fingerprinter.update(chunk)
        payload = b"".join(column.tobytes() for column in columns)
        record = {
            "events": events,
            "nbytes": len(payload),
            "crc": zlib.crc32(payload),
        }
        self._handle.write(_json_line(record))
        self._handle.write(payload)
        self._events += events
        self._chunks += 1

    def write_chunk(self, chunk: TraceChunk) -> None:
        """Append one :class:`TraceChunk` (columns already canonical)."""
        self.write_columns(
            chunk.writer,
            chunk.pc,
            chunk.home,
            chunk.block,
            chunk.truth,
            chunk.inval,
            chunk.has_inval,
            chunk.close,
        )

    def close(self) -> str:
        """Seal the file (footer + trailer), move it into place atomically.

        Returns the content's streaming fingerprint.
        """
        if self._handle is None:
            raise ValueError("TraceWriter is closed")
        fingerprint = self._fingerprinter.finish()
        footer = {
            "end": True,
            "events": self._events,
            "chunks": self._chunks,
            "fingerprint": fingerprint,
        }
        footer_line = _json_line(footer)
        self._handle.write(footer_line)
        self._handle.write(struct.pack("<Q", len(footer_line)))
        self._handle.write(MAGIC)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._handle = None
        os.replace(self._tmp_path, self.path)
        self._closed = True
        telemetry = get_telemetry()
        telemetry.count("trace.interchange.writes")
        telemetry.count("trace.interchange.events_written", self._events)
        return fingerprint

    def abort(self) -> None:
        """Discard the partial file (nothing ever appears at ``path``)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            try:
                os.unlink(self._tmp_path)
            except OSError:
                pass

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        elif not self._closed:
            self.close()


def _json_line(payload: dict) -> bytes:
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


class TraceReader:
    """Streaming ``.rtrace`` reader.

    Construction reads only the header and footer (two seeks), so event
    count, machine header, and fingerprint are O(1) regardless of file
    size; :meth:`chunks` then walks the segments, verifying each CRC.
    Any structural damage -- bad magic, stale schema, torn tail, short
    or corrupt payload, totals that disagree with the footer -- raises
    :class:`TraceFormatError`.
    """

    def __init__(self, path: PathLike):
        self.path = os.fspath(path)
        try:
            self._read_meta()
        except TraceFormatError:
            get_telemetry().count("trace.interchange.read_failures")
            raise

    def _read_meta(self) -> None:
        try:
            with open(self.path, "rb") as handle:
                magic = handle.read(len(MAGIC))
                if magic != MAGIC:
                    raise TraceFormatError(
                        f"{self.path} is not an .rtrace file (bad magic)"
                    )
                header_line = handle.readline()
                if not header_line.endswith(b"\n"):
                    raise TraceFormatError(f"{self.path}: truncated header")
                header = json.loads(header_line)
                size = os.fstat(handle.fileno()).st_size
                data_start = handle.tell()
                if size < data_start + _TRAILER_SIZE:
                    raise TraceFormatError(f"{self.path}: torn tail (no trailer)")
                handle.seek(size - _TRAILER_SIZE)
                trailer = handle.read(_TRAILER_SIZE)
                if trailer[8:] != MAGIC:
                    raise TraceFormatError(
                        f"{self.path}: torn tail (trailer magic missing)"
                    )
                (footer_len,) = struct.unpack("<Q", trailer[:8])
                footer_start = size - _TRAILER_SIZE - footer_len
                if footer_start < data_start:
                    raise TraceFormatError(f"{self.path}: torn tail (bad footer size)")
                handle.seek(footer_start)
                footer = json.loads(handle.read(footer_len))
        except TraceFormatError:
            raise
        except (OSError, ValueError, struct.error, UnicodeDecodeError) as error:
            raise TraceFormatError(
                f"unreadable .rtrace file {self.path}: {error}"
            ) from error
        schema = header.get("schema")
        if schema != RTRACE_SCHEMA:
            raise TraceFormatError(
                f"{self.path}: unsupported .rtrace schema {schema!r} "
                f"(expected {RTRACE_SCHEMA})"
            )
        if not footer.get("end"):
            raise TraceFormatError(f"{self.path}: torn tail (footer not final)")
        try:
            self.num_nodes = int(header["nodes"])
            self.name = str(header["name"])
            machine_json = header.get("machine")
            self.machine = (
                MachineSpec.from_json(machine_json) if machine_json else None
            )
            self.num_events = int(footer["events"])
            self.num_chunks = int(footer["chunks"])
            self.fingerprint = str(footer["fingerprint"])
        except (KeyError, TypeError, ValueError) as error:
            raise TraceFormatError(
                f"{self.path}: malformed .rtrace metadata: {error}"
            ) from error
        self.layout = bitmap_layout(self.num_nodes)
        if (
            header.get("bitmap_dtype") != str(np.dtype(self.layout.dtype))
            or header.get("bitmap_words") != self.layout.n_words
        ):
            raise TraceFormatError(
                f"{self.path}: bitmap layout in header does not match "
                f"{self.num_nodes} nodes"
            )
        self._data_start = data_start
        self._data_end = footer_start

    def __len__(self) -> int:
        return self.num_events

    def chunks(self) -> Iterator[TraceChunk]:
        """Iterate the file's chunk segments in order (restartable)."""
        layout = self.layout
        itemsize = np.dtype(layout.dtype).itemsize
        events_seen = 0
        chunks_seen = 0
        telemetry = get_telemetry()
        with open(self.path, "rb") as handle:
            handle.seek(self._data_start)
            while handle.tell() < self._data_end:
                record_line = handle.readline()
                try:
                    record = json.loads(record_line)
                    events = int(record["events"])
                    nbytes = int(record["nbytes"])
                    crc = int(record["crc"])
                except (KeyError, TypeError, ValueError) as error:
                    raise TraceFormatError(
                        f"{self.path}: malformed chunk record at event "
                        f"{events_seen}: {error}"
                    ) from error
                if events < 1 or nbytes != _chunk_nbytes(
                    events, layout.n_words, itemsize
                ):
                    raise TraceFormatError(
                        f"{self.path}: chunk at event {events_seen} declares "
                        f"{nbytes} bytes for {events} events"
                    )
                if handle.tell() + nbytes > self._data_end:
                    raise TraceFormatError(
                        f"{self.path}: chunk at event {events_seen} overruns "
                        "the footer"
                    )
                payload = handle.read(nbytes)
                if len(payload) != nbytes:
                    raise TraceFormatError(
                        f"{self.path}: short chunk payload at event {events_seen}"
                    )
                if zlib.crc32(payload) != crc:
                    raise TraceFormatError(
                        f"{self.path}: checksum mismatch in chunk at event "
                        f"{events_seen}"
                    )
                yield self._decode_chunk(payload, events, events_seen)
                events_seen += events
                chunks_seen += 1
        if events_seen != self.num_events or chunks_seen != self.num_chunks:
            raise TraceFormatError(
                f"{self.path}: footer promises {self.num_events} events in "
                f"{self.num_chunks} chunks, found {events_seen} in {chunks_seen}"
            )
        telemetry.count("trace.interchange.chunks_read", chunks_seen)
        telemetry.count("trace.interchange.events_read", events_seen)

    def _decode_chunk(self, payload: bytes, events: int, start: int) -> TraceChunk:
        layout = self.layout
        itemsize = np.dtype(layout.dtype).itemsize
        bitmap_count = events * layout.n_words

        offset = 0

        def take(dtype, count, width):
            nonlocal offset
            array = np.frombuffer(payload, dtype=dtype, count=count, offset=offset)
            offset += count * width
            return array

        writer = take(np.int64, events, 8)
        pc = take(np.int64, events, 8)
        home = take(np.int64, events, 8)
        block = take(np.int64, events, 8)
        truth = take(layout.dtype, bitmap_count, itemsize)
        inval = take(layout.dtype, bitmap_count, itemsize)
        has_inval = take(np.bool_, events, 1)
        close = take(np.int64, events, 8)
        if layout.packed:
            truth = truth.reshape(events, layout.n_words)
            inval = inval.reshape(events, layout.n_words)
        return TraceChunk(
            num_nodes=self.num_nodes,
            start=start,
            writer=writer,
            pc=pc,
            home=home,
            block=block,
            truth=truth,
            inval=inval,
            has_inval=has_inval,
            close=close,
            name=self.name,
            machine=self.machine,
        )

    def verify(self) -> str:
        """Recompute the content fingerprint over all chunks and check it."""
        fingerprinter = StreamFingerprinter(
            self.num_nodes, name=self.name, machine=self.machine
        )
        for chunk in self.chunks():
            fingerprinter.update(chunk)
        actual = fingerprinter.finish()
        if actual != self.fingerprint:
            raise TraceFormatError(
                f"{self.path}: content fingerprint {actual} does not match "
                f"footer fingerprint {self.fingerprint}"
            )
        return actual


class FileTraceSource(TraceSource):
    """A :class:`TraceSource` backed by an ``.rtrace`` file.

    Header metadata (length, fingerprint, machine) comes from the O(1)
    reader; chunk iteration streams off disk, so peak memory is one
    chunk's columns no matter the trace size.
    """

    def __init__(self, path: PathLike, chunk_events: int = DEFAULT_CHUNK_EVENTS):
        self._reader = TraceReader(path)
        self.path = self._reader.path
        self.name = self._reader.name
        self.num_nodes = self._reader.num_nodes
        self.machine = self._reader.machine
        self.chunk_events = chunk_events

    def __len__(self) -> int:
        return self._reader.num_events

    def chunks(self, chunk_events: Optional[int] = None) -> Iterator[TraceChunk]:
        native = self._reader.chunks()
        if chunk_events is None:
            return native
        return rechunk(native, chunk_events)

    def fingerprint(self) -> str:
        return self._reader.fingerprint

    def verify(self) -> str:
        return self._reader.verify()


def write_source(
    source: Union[SharingTrace, TraceSource],
    path: PathLike,
    chunk_events: Optional[int] = None,
) -> str:
    """Stream any trace/source into an ``.rtrace`` file; returns fingerprint."""
    source = as_source(source)
    writer = TraceWriter(
        path, source.num_nodes, name=source.name, machine=source.machine
    )
    try:
        for chunk in source.chunks(chunk_events):
            writer.write_chunk(chunk)
    except BaseException:
        writer.abort()
        raise
    return writer.close()


# ----------------------------------------------------------------------
# Importers
# ----------------------------------------------------------------------


def import_text(
    src: PathLike,
    dst: PathLike,
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
) -> Tuple[int, str]:
    """Convert a v1 text trace (``dump_text``) into ``.rtrace``.

    Streams line-by-line: peak memory is one chunk of columns plus the
    consistency checker's per-block state.  Returns ``(events,
    fingerprint)``.
    """
    with open(src, "r", encoding="utf-8") as handle:
        reader = TextTraceReader(handle, path=src)
        checker = StreamingConsistencyChecker(reader.num_nodes)
        writer = TraceWriter(
            dst, reader.num_nodes, name=reader.name, machine=reader.machine
        )
        try:
            for chunk in reader.chunks(chunk_events):
                checker.feed(chunk)
                writer.write_chunk(chunk)
            checker.finish()
        except ValueError as error:
            writer.abort()
            if isinstance(error, TraceFormatError):
                raise
            raise TraceFormatError(
                f"{os.fspath(src)} violates trace invariants: {error}"
            ) from error
        except BaseException:
            writer.abort()
            raise
        events = writer.events_written
        fingerprint = writer.close()
    get_telemetry().count("trace.interchange.imports")
    return events, fingerprint


#: ops accepted in the external CSV, normalized to W (store) / R (load)
_CSV_OPS = {
    "W": "W",
    "WR": "W",
    "WRITE": "W",
    "ST": "W",
    "STORE": "W",
    "R": "R",
    "RD": "R",
    "READ": "R",
    "LD": "R",
    "LOAD": "R",
}

_CSV_COLUMNS = ("cycle", "node", "op", "addr", "pc")


def import_csv(
    src: PathLike,
    dst: PathLike,
    num_nodes: int,
    line_size: int = 64,
    name: Optional[str] = None,
    machine: Optional[MachineSpec] = None,
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
) -> Tuple[int, str]:
    """Convert a gem5/Sniper-style access CSV into ``.rtrace``.

    The column contract (documented in EXPERIMENTS.md): rows are
    ``cycle,node,op,addr,pc``; ``op`` is a store (``W``/``ST``/...) or a
    load (``R``/``LD``/...); ``addr``/``pc`` accept decimal or ``0x``
    hex; blank lines and ``#`` comments are skipped, as is an optional
    literal header row.  Rows must already be in global memory order
    (``cycle`` is informational).  Stores open sharing epochs
    (``block = addr // line_size``, ``home = block % num_nodes``); loads
    by other nodes accumulate into the open epoch's truth bitmap.

    Memory is bounded by the span back to the oldest still-open epoch,
    not the trace length -- the streaming builder flushes every closed
    prefix into the writer.  Returns ``(events, fingerprint)``.
    """
    if name is None:
        name = os.path.splitext(os.path.basename(os.fspath(src)))[0]
    writer = TraceWriter(dst, num_nodes, name=name, machine=machine)
    builder = StreamingTraceBuilder(
        num_nodes,
        sink=writer,
        name=name,
        machine=machine,
        flush_events=chunk_events,
    )
    try:
        with open(src, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                row = _parse_csv_row(line, lineno, src, num_nodes)
                if row is None:
                    continue
                node, op, addr, pc = row
                block = addr // line_size
                if op == "W":
                    builder.add_event(node, pc, block % num_nodes, block)
                else:
                    builder.add_reader(block, node)
        events = builder.finalize()
    except BaseException:
        writer.abort()
        raise
    fingerprint = writer.close()
    get_telemetry().count("trace.interchange.imports")
    return events, fingerprint


def _parse_csv_row(
    line: str, lineno: int, src: PathLike, num_nodes: int
) -> Optional[Tuple[int, str, int, int]]:
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    fields = [field.strip() for field in text.split(",")]
    if [field.lower() for field in fields] == list(_CSV_COLUMNS):
        return None  # the optional literal header row
    if len(fields) != len(_CSV_COLUMNS):
        raise TraceFormatError(
            f"{os.fspath(src)}:{lineno}: expected "
            f"{','.join(_CSV_COLUMNS)}, got {text!r}"
        )
    try:
        node = int(fields[1])
        op = _CSV_OPS[fields[2].upper()]
        addr = int(fields[3], 0)
        pc = int(fields[4], 0)
    except (KeyError, ValueError) as error:
        raise TraceFormatError(
            f"{os.fspath(src)}:{lineno}: malformed row {text!r}: {error}"
        ) from error
    if not 0 <= node < num_nodes:
        raise TraceFormatError(
            f"{os.fspath(src)}:{lineno}: node {node} out of range "
            f"[0, {num_nodes})"
        )
    if addr < 0 or pc < 0:
        raise TraceFormatError(
            f"{os.fspath(src)}:{lineno}: negative addr/pc in {text!r}"
        )
    return node, op, addr, pc


def import_npz(
    src: PathLike,
    dst: PathLike,
    chunk_events: int = DEFAULT_CHUNK_EVENTS,
) -> Tuple[int, str]:
    """Convert a cached ``.npz`` trace into ``.rtrace`` (resident load)."""
    from repro.trace.io import load_trace

    trace = load_trace(src)
    fingerprint = write_source(trace, dst, chunk_events)
    get_telemetry().count("trace.interchange.imports")
    return len(trace), fingerprint


# ----------------------------------------------------------------------
# Synthetic CSV generation (CI smoke + benchmarks)
# ----------------------------------------------------------------------


def synthesize_csv(
    dst: PathLike,
    events: int,
    num_nodes: int,
    blocks: int = 4096,
    seed: int = 1,
    line_size: int = 64,
    pcs: int = 64,
    max_readers: int = 4,
) -> int:
    """Write a deterministic synthetic access CSV of ``events`` stores.

    Uniform-random block reuse keeps the open-epoch span (and hence the
    importer's memory) bounded by roughly ``blocks * ln(blocks)`` events;
    each store is followed by a handful of loads from other nodes so the
    resulting epochs carry non-trivial sharing truth.  Streams rows
    straight to disk -- O(1) memory at any event count.  Returns the
    number of rows written.
    """
    import random

    rng = random.Random(seed)
    rows = 0
    cycle = 0
    with open(dst, "w", encoding="utf-8") as handle:
        handle.write("cycle,node,op,addr,pc\n")
        for _ in range(events):
            block = rng.randrange(blocks)
            node = rng.randrange(num_nodes)
            pc = 0x400000 + 8 * rng.randrange(pcs)
            addr = block * line_size
            cycle += rng.randrange(1, 8)
            handle.write(f"{cycle},{node},W,{addr:#x},{pc:#x}\n")
            rows += 1
            for _ in range(rng.randrange(max_readers + 1)):
                reader = rng.randrange(num_nodes)
                cycle += rng.randrange(1, 4)
                handle.write(f"{cycle},{reader},R,{addr:#x},{pc:#x}\n")
                rows += 1
    return rows


# ----------------------------------------------------------------------
# CLI: repro-trace / python -m repro.trace.interchange
# ----------------------------------------------------------------------


def _guess_format(path: str) -> str:
    extension = os.path.splitext(path)[1].lower()
    if extension in (".txt", ".text", ".trace"):
        return "text"
    if extension == ".csv":
        return "csv"
    if extension == ".npz":
        return "npz"
    raise SystemExit(
        f"cannot guess the input format of {path!r}; pass --format"
    )


def _cmd_import(args: argparse.Namespace) -> int:
    fmt = args.format or _guess_format(args.src)
    if fmt == "csv":
        if args.nodes is None:
            raise SystemExit("--nodes is required for CSV imports")
        events, fingerprint = import_csv(
            args.src,
            args.dst,
            num_nodes=args.nodes,
            line_size=args.line_size,
            name=args.name,
            chunk_events=args.chunk_events,
        )
    elif fmt == "text":
        events, fingerprint = import_text(
            args.src, args.dst, chunk_events=args.chunk_events
        )
    else:
        events, fingerprint = import_npz(
            args.src, args.dst, chunk_events=args.chunk_events
        )
    if args.verify:
        TraceReader(args.dst).verify()
    print(
        f"imported {events} events from {args.src} ({fmt}) -> {args.dst} "
        f"[fingerprint {fingerprint}]"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    reader = TraceReader(args.path)
    machine = reader.machine.to_json() if reader.machine is not None else "-"
    print(f"path:        {reader.path}")
    print(f"schema:      {RTRACE_SCHEMA}")
    print(f"name:        {reader.name}")
    print(f"nodes:       {reader.num_nodes}")
    print(f"events:      {reader.num_events}")
    print(f"chunks:      {reader.num_chunks}")
    print(f"fingerprint: {reader.fingerprint}")
    print(f"machine:     {machine}")
    if args.verify:
        reader.verify()
        print("verified:    content matches footer fingerprint")
    return 0


def _cmd_export_text(args: argparse.Namespace) -> int:
    from repro.trace.io import dump_text

    source = FileTraceSource(args.src)
    dump_text(source, args.dst)
    print(f"exported {len(source)} events from {args.src} -> {args.dst}")
    return 0


def _cmd_synth_csv(args: argparse.Namespace) -> int:
    rows = synthesize_csv(
        args.dst,
        events=args.events,
        num_nodes=args.nodes,
        blocks=args.blocks,
        seed=args.seed,
        line_size=args.line_size,
    )
    print(f"wrote {rows} rows ({args.events} stores) to {args.dst}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Import, inspect, and export .rtrace interchange files.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cmd = commands.add_parser(
        "import", help="convert a text/CSV/npz trace into .rtrace"
    )
    cmd.add_argument("src", help="input trace file")
    cmd.add_argument("dst", help="output .rtrace path")
    cmd.add_argument(
        "--format",
        choices=("text", "csv", "npz"),
        help="input format (default: guess from the extension)",
    )
    cmd.add_argument(
        "--nodes", type=int, help="machine width (required for CSV input)"
    )
    cmd.add_argument(
        "--line-size",
        type=int,
        default=64,
        help="cache line size in bytes for CSV address mapping (default 64)",
    )
    cmd.add_argument("--name", help="trace name (default: input file stem)")
    cmd.add_argument(
        "--chunk-events",
        type=int,
        default=DEFAULT_CHUNK_EVENTS,
        help=f"events per chunk segment (default {DEFAULT_CHUNK_EVENTS})",
    )
    cmd.add_argument(
        "--verify",
        action="store_true",
        help="re-read the output and check its content fingerprint",
    )
    cmd.set_defaults(func=_cmd_import)

    cmd = commands.add_parser("info", help="print an .rtrace file's header")
    cmd.add_argument("path")
    cmd.add_argument(
        "--verify",
        action="store_true",
        help="also recompute and check the content fingerprint",
    )
    cmd.set_defaults(func=_cmd_info)

    cmd = commands.add_parser(
        "export-text", help="convert .rtrace back to the v1 text format"
    )
    cmd.add_argument("src")
    cmd.add_argument("dst")
    cmd.set_defaults(func=_cmd_export_text)

    cmd = commands.add_parser(
        "synth-csv",
        help="generate a deterministic synthetic access CSV (for smokes)",
    )
    cmd.add_argument("dst")
    cmd.add_argument("--events", type=int, required=True, help="store count")
    cmd.add_argument("--nodes", type=int, default=16)
    cmd.add_argument("--blocks", type=int, default=4096)
    cmd.add_argument("--seed", type=int, default=1)
    cmd.add_argument("--line-size", type=int, default=64)
    cmd.set_defaults(func=_cmd_synth_csv)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except TraceFormatError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
