"""Sharing traces: the interface between substrate and predictors.

A sharing trace is the sequence of *prediction events* a run produces: one
event per store that performed a coherence action (write miss or upgrade),
annotated with everything predictors may index on (pid, pc, dir, addr) and
with the ground truth the evaluators need (the epoch's eventual reader set,
the reader set invalidated at the event, and the index of the event that
closes the epoch).

Traces come in two working forms: resident :class:`SharingTrace` arrays,
and streaming :class:`~repro.trace.source.TraceSource` chunk iterators
(the ``.rtrace`` interchange file on disk, via
:class:`~repro.trace.interchange.FileTraceSource`).  Both flow through
the same engines; ``repro-trace import`` converts foreign trace formats.
"""

from repro.trace.events import SharingEvent, SharingTrace
from repro.trace.io import TraceFormatError, load_trace, save_trace
from repro.trace.source import (
    ResidentTraceSource,
    TraceChunk,
    TraceSource,
    as_source,
    stream_fingerprint,
)
from repro.trace.shm import (
    TraceDescriptor,
    attach_trace,
    publish_traces,
    shm_available,
    shm_enabled,
    trace_fingerprint,
)
from repro.trace.stats import TraceStats, compute_trace_stats

#: interchange exports resolved lazily (PEP 562) so ``python -m
#: repro.trace.interchange`` never double-imports the module via the package
_INTERCHANGE_EXPORTS = (
    "FileTraceSource",
    "TraceReader",
    "TraceWriter",
    "write_source",
)


def __getattr__(name: str):
    if name in _INTERCHANGE_EXPORTS:
        from repro.trace import interchange

        return getattr(interchange, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "SharingEvent",
    "SharingTrace",
    "FileTraceSource",
    "ResidentTraceSource",
    "TraceChunk",
    "TraceFormatError",
    "TraceReader",
    "TraceSource",
    "TraceWriter",
    "as_source",
    "stream_fingerprint",
    "write_source",
    "load_trace",
    "save_trace",
    "TraceStats",
    "compute_trace_stats",
    "TraceDescriptor",
    "attach_trace",
    "publish_traces",
    "shm_available",
    "shm_enabled",
    "trace_fingerprint",
]
