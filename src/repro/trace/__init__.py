"""Sharing traces: the interface between substrate and predictors.

A sharing trace is the sequence of *prediction events* a run produces: one
event per store that performed a coherence action (write miss or upgrade),
annotated with everything predictors may index on (pid, pc, dir, addr) and
with the ground truth the evaluators need (the epoch's eventual reader set,
the reader set invalidated at the event, and the index of the event that
closes the epoch).
"""

from repro.trace.events import SharingEvent, SharingTrace
from repro.trace.io import load_trace, save_trace
from repro.trace.shm import (
    TraceDescriptor,
    attach_trace,
    publish_traces,
    shm_available,
    shm_enabled,
    trace_fingerprint,
)
from repro.trace.stats import TraceStats, compute_trace_stats

__all__ = [
    "SharingEvent",
    "SharingTrace",
    "load_trace",
    "save_trace",
    "TraceStats",
    "compute_trace_stats",
    "TraceDescriptor",
    "attach_trace",
    "publish_traces",
    "shm_available",
    "shm_enabled",
    "trace_fingerprint",
]
