"""Streaming telemetry: a sink that reports every update as it lands.

The service layer streams per-job progress to remote clients while the job
is still running.  The engine and planner already record everything worth
streaming (``plan.*`` batch progress, ``engine.parallel.*`` chunk
completions, ``journal.*`` checkpoints, ``shm.*`` transport decisions) --
:class:`StreamingTelemetry` turns those records into push events instead of
inventing a parallel progress protocol.

Every mutation -- a direct ``count``/``timer_add``/``gauge`` or one arriving
via ``merge`` (how parallel-worker snapshots land in the parent) -- invokes
the ``emit`` callback with ``(kind, name, value)`` where ``value`` is the
*post-update* total.  The callback must be cheap and must not raise;
callers that fan events out to slow consumers (sockets) should enqueue and
return.  Snapshots, merging, and serialization behave exactly like the base
class, so a ``StreamingTelemetry`` can sit anywhere a ``Telemetry`` does.
"""

from __future__ import annotations

from typing import Callable

from repro.telemetry.core import Telemetry

#: event callback signature: ``emit(kind, name, value)`` with kind one of
#: ``"counter"`` / ``"timer"`` / ``"gauge"`` and value the new total
EmitCallback = Callable[[str, str, float], None]


class StreamingTelemetry(Telemetry):
    """A :class:`Telemetry` that pushes each update to a callback."""

    __slots__ = ("emit",)

    def __init__(self, emit: EmitCallback):
        super().__init__()
        self.emit = emit

    def count(self, name: str, amount: int = 1) -> None:
        super().count(name, amount)
        self.emit("counter", name, self.counters[name])

    def timer_add(self, name: str, seconds: float, calls: int = 1) -> None:
        super().timer_add(name, seconds, calls)
        self.emit("timer", name, self.timers[name][0])

    def gauge(self, name: str, value: float) -> None:
        super().gauge(name, value)
        self.emit("gauge", name, self.gauges[name])

    def merge(self, other: Telemetry) -> Telemetry:
        # Route through the recording methods (the base class mutates the
        # maps directly) so merged worker snapshots stream like local writes.
        for name, amount in other.counters.items():
            self.count(name, amount)
        for name, (seconds, calls) in other.timers.items():
            self.timer_add(name, seconds, calls)
        for name, value in other.gauges.items():
            self.gauge(name, value)
        return self
