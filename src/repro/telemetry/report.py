"""Structured run reports: the machine-readable record of one harness run.

A :class:`RunReport` bundles run identity (backend, job count, benchmark
suite), per-experiment wall-clock, and the full merged
:class:`~repro.telemetry.core.Telemetry` snapshot into one schema-versioned
JSON document.  The CLI emits it via ``--telemetry json`` /
``--telemetry-out FILE``; the slow CI job uploads it as the BENCH artifact,
so successive reports form a perf trajectory that can be diffed run over
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry.core import (
    TELEMETRY_SCHEMA,
    Telemetry,
    TelemetrySchemaError,
)

#: bump when the report layout changes (independent of the telemetry schema)
REPORT_SCHEMA = 1


@dataclass
class RunReport:
    """One harness run, summarized for humans and perf-trajectory tooling."""

    backend: str
    jobs: int = 1
    benchmarks: List[str] = field(default_factory=list)
    #: per-experiment wall-clock, in run order: ``{"name": ..., "seconds": ...}``
    experiments: List[Dict] = field(default_factory=list)
    telemetry: Telemetry = field(default_factory=Telemetry)

    def add_experiment(self, name: str, seconds: float) -> None:
        self.experiments.append({"name": name, "seconds": round(seconds, 6)})
        self.telemetry.timer_add(f"experiment.{name}.seconds", seconds)

    @property
    def total_seconds(self) -> float:
        return sum(entry["seconds"] for entry in self.experiments)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "schema": {"report": REPORT_SCHEMA, "telemetry": TELEMETRY_SCHEMA},
            "backend": self.backend,
            "jobs": self.jobs,
            "benchmarks": list(self.benchmarks),
            "experiments": [dict(entry) for entry in self.experiments],
            "total_seconds": round(self.total_seconds, 6),
            "telemetry": self.telemetry.to_json(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "RunReport":
        """Rebuild a report written by :meth:`to_json`.

        Raises:
            TelemetrySchemaError: the payload is not a run report or was
                written under a different schema version.
        """
        if not isinstance(data, dict):
            raise TelemetrySchemaError(
                f"run report payload is {type(data).__name__}, expected object"
            )
        schema = data.get("schema")
        if not isinstance(schema, dict) or schema.get("report") != REPORT_SCHEMA:
            raise TelemetrySchemaError(
                f"run report schema {schema!r} != "
                f"{{'report': {REPORT_SCHEMA}, 'telemetry': {TELEMETRY_SCHEMA}}}"
            )
        try:
            return cls(
                backend=data["backend"],
                jobs=int(data.get("jobs", 1)),
                benchmarks=list(data.get("benchmarks", [])),
                experiments=[dict(entry) for entry in data.get("experiments", [])],
                telemetry=Telemetry.from_json(data["telemetry"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise TelemetrySchemaError(f"malformed run report: {error}") from error

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render_pretty(self) -> str:
        """A human-readable rendition of the report (``--telemetry pretty``)."""
        lines: List[str] = []
        lines.append("== run telemetry ==")
        lines.append(
            f"backend={self.backend} jobs={self.jobs} "
            f"benchmarks={','.join(self.benchmarks) or '-'}"
        )
        if self.experiments:
            lines.append("-- experiments --")
            for entry in self.experiments:
                lines.append(f"  {entry['name']:<24} {entry['seconds']:>9.3f}s")
            lines.append(f"  {'total':<24} {self.total_seconds:>9.3f}s")
        telemetry = self.telemetry
        worker_counters = {
            name: value
            for name, value in telemetry.counters.items()
            if ".worker." in name
        }
        if telemetry.counters:
            lines.append("-- counters --")
            for name in sorted(telemetry.counters):
                if name in worker_counters:
                    continue
                lines.append(f"  {name:<40} {telemetry.counters[name]:>12}")
        if telemetry.timers:
            lines.append("-- timers --")
            for name in sorted(telemetry.timers):
                seconds, calls = telemetry.timers[name]
                lines.append(f"  {name:<40} {seconds:>9.3f}s / {calls} call(s)")
        if telemetry.gauges:
            lines.append("-- gauges --")
            for name in sorted(telemetry.gauges):
                lines.append(f"  {name:<40} {telemetry.gauges[name]:>12.2f}")
        if worker_counters:
            lines.append("-- parallel workers --")
            for name in sorted(worker_counters):
                lines.append(f"  {name:<40} {worker_counters[name]:>12}")
        return "\n".join(lines)


def render_worker_summary(telemetry: Telemetry) -> Optional[str]:
    """One-line recap of per-worker shard balance, if any workers reported."""
    events = {
        name.split(".worker.", 1)[1].split(".", 1)[0]: value
        for name, value in telemetry.counters.items()
        if ".worker." in name and name.endswith(".events")
    }
    if not events:
        return None
    spread = ", ".join(f"{pid}:{count}" for pid, count in sorted(events.items()))
    return f"worker events {spread}"
