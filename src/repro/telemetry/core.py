"""Mergeable run telemetry: named counters, timers, and gauges.

The harness instruments itself the way it instruments predictors: every
interesting subsystem (the trace and result caches, each evaluation-engine
backend, the CLI's per-experiment loop) records what it did into a
:class:`Telemetry` object.  Three properties drive the design:

* **Near-zero overhead when disabled.**  The process-wide default is
  :data:`NULL_TELEMETRY`, whose recording methods are no-ops and whose
  ``enabled`` flag lets hot paths skip even argument construction
  (``if tele.enabled: ...``).  Instrumentation sits at trace/batch
  granularity, never inside per-event loops.
* **Associative merging.**  Counters add, timer totals and call counts add,
  gauges take the most recent write.  ``merge(a, merge(b, c)) ==
  merge(merge(a, b), c)``, which is what lets the parallel backend record
  into a fresh ``Telemetry`` per worker chunk and fold the snapshots back
  into the parent in any completion order (property-tested in
  ``tests/telemetry``).
* **Cheap cross-process transport.**  :meth:`Telemetry.to_json` emits plain
  dicts of numbers (schema-versioned), so worker snapshots pickle flat and
  the CLI's run report can embed them directly.

Naming convention: dotted lowercase paths, coarse-to-fine --
``cache.trace.disk_hits``, ``engine.parallel.batch_seconds``,
``engine.parallel.worker.<pid>.events``.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, Optional

#: bump when the telemetry JSON layout changes (consumed by run reports and
#: the BENCH_*.json perf trajectory)
TELEMETRY_SCHEMA = 1


class TelemetrySchemaError(ValueError):
    """A telemetry payload is malformed or written under another schema."""


class _TimerContext:
    """Context manager recording one wall-clock span into a named timer."""

    __slots__ = ("_telemetry", "_name", "_start")

    def __init__(self, telemetry: "Telemetry", name: str):
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._telemetry.timer_add(self._name, time.perf_counter() - self._start)


class _NullContext:
    """Reusable do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_CONTEXT = _NullContext()


class Telemetry:
    """Named counters, timers, and gauges for one run (or one worker chunk).

    Counters are integers that add under :meth:`merge`; timers accumulate
    ``(seconds, calls)`` pairs; gauges are point-in-time floats where the
    most recent write wins.
    """

    #: hot paths may consult this to skip instrumentation entirely
    enabled: bool = True

    __slots__ = ("counters", "timers", "gauges")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        #: name -> [total_seconds, calls]
        self.timers: Dict[str, list] = {}
        self.gauges: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def timer_add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold one measured span (or a pre-merged total) into a timer."""
        timer = self.timers.get(name)
        if timer is None:
            self.timers[name] = [float(seconds), calls]
        else:
            timer[0] += seconds
            timer[1] += calls

    def timer(self, name: str) -> _TimerContext:
        """Context manager timing a block into the named timer."""
        return _TimerContext(self, name)

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time observation (last write wins on merge)."""
        self.gauges[name] = float(value)

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    def merge(self, other: "Telemetry") -> "Telemetry":
        """Fold ``other`` into this object and return ``self``.

        Counters and timers add; gauges from ``other`` overwrite.  The
        operation is associative, so worker snapshots can be folded in any
        order.
        """
        for name, amount in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + amount
        for name, (seconds, calls) in other.timers.items():
            self.timer_add(name, seconds, calls)
        self.gauges.update(other.gauges)
        return self

    @classmethod
    def merged(cls, parts: Iterable["Telemetry"]) -> "Telemetry":
        """A fresh telemetry object holding the fold of ``parts``."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total

    def prefixed(self, prefix: str) -> "Telemetry":
        """A copy with every name scoped under ``prefix``.

        The scoping primitive for folding one unit of work's telemetry into
        an enclosing sink without name collisions: the service layer merges
        each job's snapshot as ``sink.merge(job.prefixed("service.job."))``,
        keeping per-job counters distinguishable from the server's own.
        """
        scoped = Telemetry()
        for name, amount in self.counters.items():
            scoped.counters[f"{prefix}{name}"] = amount
        for name, (seconds, calls) in self.timers.items():
            scoped.timers[f"{prefix}{name}"] = [seconds, calls]
        for name, value in self.gauges.items():
            scoped.gauges[f"{prefix}{name}"] = value
        return scoped

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        """A schema-versioned, JSON- and pickle-friendly snapshot."""
        return {
            "schema": TELEMETRY_SCHEMA,
            "counters": dict(self.counters),
            "timers": {
                name: {"seconds": seconds, "calls": calls}
                for name, (seconds, calls) in self.timers.items()
            },
            "gauges": dict(self.gauges),
        }

    @classmethod
    def from_json(cls, data: dict) -> "Telemetry":
        """Rebuild a snapshot written by :meth:`to_json`.

        Raises:
            TelemetrySchemaError: the payload is not a telemetry snapshot or
                was written under a different :data:`TELEMETRY_SCHEMA`.
        """
        if not isinstance(data, dict):
            raise TelemetrySchemaError(
                f"telemetry payload is {type(data).__name__}, expected object"
            )
        if data.get("schema") != TELEMETRY_SCHEMA:
            raise TelemetrySchemaError(
                f"telemetry schema {data.get('schema')!r} != {TELEMETRY_SCHEMA}"
            )
        telemetry = cls()
        try:
            for name, amount in data.get("counters", {}).items():
                telemetry.counters[name] = int(amount)
            for name, timer in data.get("timers", {}).items():
                telemetry.timers[name] = [float(timer["seconds"]), int(timer["calls"])]
            for name, value in data.get("gauges", {}).items():
                telemetry.gauges[name] = float(value)
        except (AttributeError, KeyError, TypeError, ValueError) as error:
            raise TelemetrySchemaError(
                f"malformed telemetry payload: {error}"
            ) from error
        return telemetry

    def __bool__(self) -> bool:
        """True when anything has been recorded."""
        return bool(self.counters or self.timers or self.gauges)

    def __repr__(self) -> str:
        return (
            f"Telemetry(counters={len(self.counters)}, timers={len(self.timers)}, "
            f"gauges={len(self.gauges)})"
        )


class NullTelemetry(Telemetry):
    """The disabled fast path: every recording method is a no-op.

    Shares the :class:`Telemetry` read interface (all maps stay empty) so
    callers never branch on type, only -- optionally -- on ``enabled``.
    """

    enabled = False

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def timer_add(self, name: str, seconds: float, calls: int = 1) -> None:
        pass

    def timer(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def gauge(self, name: str, value: float) -> None:
        pass

    def merge(self, other: Telemetry) -> Telemetry:
        return self


#: the process-wide disabled singleton (default for :func:`get_telemetry`)
NULL_TELEMETRY = NullTelemetry()

_current: Telemetry = NULL_TELEMETRY

_thread_override = threading.local()


def get_telemetry() -> Telemetry:
    """The active telemetry sink (``NULL_TELEMETRY`` unless installed).

    Instrumented code calls this at operation granularity rather than
    holding a reference, so enabling telemetry mid-process (the CLI does)
    is picked up everywhere immediately.  A thread-scoped override
    (:func:`set_thread_telemetry`) wins over the process-wide sink: the
    service layer scopes each job's activity to its executor thread this
    way, without perturbing what other threads record concurrently.
    """
    override = getattr(_thread_override, "sink", None)
    if override is not None:
        return override
    return _current


def set_thread_telemetry(telemetry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Install a sink visible only to the calling thread (``None`` clears).

    Returns the thread's previous override so callers can restore it.
    Unlike :func:`set_telemetry` this never touches what other threads see,
    which is what makes it safe to scope one unit of work's telemetry while
    the rest of the process keeps recording into the shared sink.
    """
    previous = getattr(_thread_override, "sink", None)
    _thread_override.sink = telemetry
    return previous


def set_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Install (or with ``None``, clear) the process-wide telemetry sink.

    Returns the previously installed sink so callers can restore it.
    """
    global _current
    previous = _current
    _current = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous
