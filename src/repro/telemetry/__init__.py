"""Run-telemetry subsystem: mergeable counters/timers/gauges + run reports.

See :mod:`repro.telemetry.core` for the measurement primitives and merge
semantics, and :mod:`repro.telemetry.report` for the schema-versioned run
report the CLI emits.  DESIGN.md's telemetry subsection documents the
architecture (instrumentation points, worker aggregation).
"""

from __future__ import annotations

from repro.telemetry.core import (
    NULL_TELEMETRY,
    TELEMETRY_SCHEMA,
    NullTelemetry,
    Telemetry,
    TelemetrySchemaError,
    get_telemetry,
    set_telemetry,
    set_thread_telemetry,
)
from repro.telemetry.report import REPORT_SCHEMA, RunReport, render_worker_summary
from repro.telemetry.stream import StreamingTelemetry

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "REPORT_SCHEMA",
    "RunReport",
    "StreamingTelemetry",
    "TELEMETRY_SCHEMA",
    "Telemetry",
    "TelemetrySchemaError",
    "get_telemetry",
    "render_worker_summary",
    "set_telemetry",
    "set_thread_telemetry",
]
