"""gauss: pivot-row broadcast over cyclically distributed rows.

Gaussian elimination with rows dealt to threads round-robin.  Each step
the pivot row's owner normalizes it; every thread still holding unfinished
rows then reads the pivot row (a one-to-all broadcast, the widest stable
sharing in the suite) and updates its own rows in place.

The sharing trace mixes two populations, as in the paper's run:

* pivot-row epochs read by all active threads (high-degree sharing), plus
  a small per-step reduction array used to pick the pivot (also broadcast);
* a long tail of own-row rewrites that miss only because the matrix
  exceeds the scaled cache -- zero-reader events that dilute prevalence
  toward the paper's measured 9.92%.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.workloads.base import Access, Barrier, ThreadItem, Workload
from repro.workloads.layout import MemoryLayout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine import MachineSpec


class GaussWorkload(Workload):
    """Dense LU-style elimination (paper input: 512x512)."""

    name = "gauss"
    suggested_cache_bytes = 12 * 1024
    suggested_cache_associativity = 6

    def __init__(
        self,
        num_nodes: int = 16,
        seed: int = 0,
        machine: Optional["MachineSpec"] = None,
        size: int = 96,
        padding: int = 0,
        repeats: int = 2,
    ):
        super().__init__(num_nodes=num_nodes, seed=seed, machine=machine)
        num_nodes = self.num_nodes  # the spec may have resized the machine
        if size < num_nodes:
            raise ValueError(f"matrix size {size} smaller than thread count {num_nodes}")
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        # Factor `repeats` matrices back to back (multiple solves, as an
        # iterative application would).  With a single factorization every
        # pivot-broadcast epoch stays open to the end of the trace, so
        # direct and forwarded update never receive any sharing feedback and
        # no realizable predictor can learn the broadcast; the second
        # factorization is where gauss becomes predictable.
        self.repeats = repeats
        self.size = size
        # Row padding skews the power-of-two stride so a thread's rows do
        # not all collide in the same cache sets (standard practice in the
        # real benchmark; without it conflict misses swamp the trace).
        self.row_stride = size + padding
        layout = MemoryLayout()
        self.matrix = layout.array("matrix", size * self.row_stride, 8)
        # One candidate slot per thread for the distributed pivot reduction.
        self.reduction = layout.array("reduction", num_nodes, 8)

    def _element(self, row: int, col: int) -> int:
        return self.matrix.addr(row * self.row_stride + col)

    def _owner(self, row: int) -> int:
        return row % self.num_nodes

    def _own_rows(self, tid: int) -> List[int]:
        return list(range(tid, self.size, self.num_nodes))

    def thread_programs(self) -> List[Iterator[ThreadItem]]:
        return [self._thread(tid) for tid in range(self.num_nodes)]

    def _thread(self, tid: int) -> Iterator[ThreadItem]:
        pc_init = self.pcs.site("init_row")

        for _ in range(self.repeats):
            # (Re-)initialization: owners fill their rows with the next
            # system's coefficients, closing the previous solve's epochs.
            for row in self._own_rows(tid):
                for col in range(self.size):
                    yield Access("W", self._element(row, col), pc_init)
            yield Barrier()

            yield from self._factorize(tid)

    def _factorize(self, tid: int) -> Iterator[ThreadItem]:
        pc_candidate = self.pcs.site("pivot_candidate")
        pc_normalize = self.pcs.site("normalize_pivot")
        pc_multiplier = self.pcs.site("store_multiplier")
        pc_eliminate = self.pcs.site("eliminate")

        for step in range(self.size - 1):
            # Distributed pivot search: scan column `step` of own unfinished
            # rows, publish the local best, pivot owner reads all candidates.
            if any(row >= step for row in self._own_rows(tid)):
                for row in self._own_rows(tid):
                    if row >= step:
                        yield Access("R", self._element(row, step))
                yield Access("W", self.reduction.addr(tid), pc_candidate)
            yield Barrier()

            owner = self._owner(step)
            if tid == owner:
                for candidate in range(self.num_nodes):
                    yield Access("R", self.reduction.addr(candidate))
                for col in range(step, self.size):
                    yield Access("R", self._element(step, col))
                    yield Access("W", self._element(step, col), pc_normalize)
            yield Barrier()

            # Elimination: read the pivot row, update own rows below it.
            for row in self._own_rows(tid):
                if row <= step:
                    continue
                yield Access("R", self._element(row, step))
                yield Access("R", self._element(step, step))
                yield Access("W", self._element(row, step), pc_multiplier)
                for col in range(step + 1, self.size):
                    yield Access("R", self._element(step, col))
                    yield Access("R", self._element(row, col))
                    yield Access("W", self._element(row, col), pc_eliminate)
            yield Barrier()
