"""unstruct: irregular static mesh with edge-based flux accumulation.

An unstructured-mesh CFD kernel: a fixed set of edges connects mesh nodes
dealt to threads in contiguous chunks, with endpoints biased toward the
owner and its index-adjacent peers (what a good mesh partitioner produces).
Each sweep reads both endpoint values per edge and accumulates fluxes into
both endpoints under locks; a second phase integrates each node from its
flux and publishes the new value.

Node values are read by the owners of all edges incident to the node -- an
irregular but *static* reader set of about two threads, giving the paper's
12.83% prevalence (Table 6).  Mesh-node records are 32 bytes, so pairs of
nodes share lines, adding mild false sharing as in the real code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.workloads.base import Access, Atomic, Barrier, ThreadItem, Workload
from repro.workloads.layout import MemoryLayout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine import MachineSpec


class UnstructWorkload(Workload):
    """Edge-based unstructured mesh kernel (paper input: 2K mesh)."""

    name = "unstruct"
    suggested_cache_bytes = 32 * 1024

    def __init__(
        self,
        num_nodes: int = 16,
        seed: int = 0,
        machine: Optional["MachineSpec"] = None,
        mesh_nodes_per_thread: int = 96,
        edges_per_node: float = 3.0,
        remote_fraction: float = 0.70,
        adjacent_bias: float = 0.4,
        flux_rate: float = 0.22,
        scan_rate: float = 0.30,
        iterations: int = 6,
    ):
        super().__init__(num_nodes=num_nodes, seed=seed, machine=machine)
        num_nodes = self.num_nodes  # the spec may have resized the machine
        if not 0.0 <= flux_rate <= 1.0:
            raise ValueError(f"flux_rate must be in [0,1], got {flux_rate}")
        self.mesh_nodes_per_thread = mesh_nodes_per_thread
        self.flux_rate = flux_rate
        self.scan_rate = scan_rate
        self.iterations = iterations

        total = num_nodes * mesh_nodes_per_thread
        layout = MemoryLayout()
        self.values = layout.array("node_values", total, 32)
        self.fluxes = layout.array("node_fluxes", total, 32)

        rng = self.rng.spawn("mesh")
        num_edges = int(total * edges_per_node)
        # edges[e] = (a, b); a's owner computes the edge.  b is usually in
        # the same or an adjacent partition (partitioner locality).
        self.edges: List[Tuple[int, int]] = []
        for _ in range(num_edges):
            a = rng.integers(0, total)
            owner = a // mesh_nodes_per_thread
            if rng.random() < remote_fraction:
                # Partitioner locality is imperfect: cut edges mostly reach
                # adjacent partitions, but a share of them span the mesh.
                if rng.random() < adjacent_bias:
                    peer = (owner + rng.choice([-1, 1, 2])) % num_nodes
                else:
                    peer = rng.integers(0, num_nodes)
            else:
                peer = owner
            b = peer * mesh_nodes_per_thread + rng.integers(0, mesh_nodes_per_thread)
            self.edges.append((a, b))

    def _own_mesh_nodes(self, tid: int) -> range:
        start = tid * self.mesh_nodes_per_thread
        return range(start, start + self.mesh_nodes_per_thread)

    def _owner(self, mesh_node: int) -> int:
        return mesh_node // self.mesh_nodes_per_thread

    def thread_programs(self) -> List[Iterator[ThreadItem]]:
        return [self._thread(tid) for tid in range(self.num_nodes)]

    def _thread(self, tid: int) -> Iterator[ThreadItem]:
        pc_init_value = self.pcs.site("init_value")
        pc_init_flux = self.pcs.site("init_flux")
        pc_flux_a = self.pcs.site("accumulate_flux_a")
        pc_flux_b = self.pcs.site("accumulate_flux_b")
        pc_update = self.pcs.site("update_value")
        pc_reset = self.pcs.site("reset_flux")

        own_edges = [edge for edge in self.edges if self._owner(edge[0]) == tid]

        for mesh_node in self._own_mesh_nodes(tid):
            yield Access("W", self.values.addr(mesh_node), pc_init_value)
            yield Access("W", self.fluxes.addr(mesh_node), pc_init_flux)
        yield Barrier()

        # Which remote nodes this thread's fluxes reach is dictated by the
        # (static) mesh and the slowly-evolving solution, so the active set
        # churns gently between sweeps instead of being redrawn.
        rng = self.rng.spawn(f"flux:{tid}")
        remote_endpoints = sorted(
            {b for _, b in own_edges if self._owner(b) != tid}
            | {a for a, _ in own_edges if self._owner(a) != tid}
        )
        flux_active = {
            endpoint: rng.random() < self.flux_rate for endpoint in remote_endpoints
        }
        churn = 0.10
        enter_probability = churn * self.flux_rate / max(1e-9, 1.0 - self.flux_rate)
        for _ in range(self.iterations):
            for endpoint in remote_endpoints:
                if flux_active[endpoint]:
                    if rng.random() < churn:
                        flux_active[endpoint] = False
                elif rng.random() < enter_probability:
                    flux_active[endpoint] = True
            # Edge sweep: read both endpoint values per edge; flux
            # contributions are summed locally and each node whose flux is
            # nonzero this sweep is written once (one lock round per node),
            # as tuned unstructured codes do.
            touched_local: List[int] = []
            touched_remote: List[int] = []
            seen = set()
            for a, b in own_edges:
                yield Access("R", self.values.addr(a))
                yield Access("R", self.values.addr(b))
                for endpoint in (a, b):
                    if endpoint in seen:
                        continue
                    seen.add(endpoint)
                    local = self._owner(endpoint) == tid
                    if not local and not flux_active[endpoint]:
                        continue  # flux below threshold this sweep
                    if local:
                        touched_local.append(endpoint)
                    else:
                        touched_remote.append(endpoint)
            for endpoint in touched_local:
                flux = self.fluxes.addr(endpoint)
                yield Atomic([Access("R", flux), Access("W", flux, pc_flux_a)])
            for endpoint in touched_remote:
                flux = self.fluxes.addr(endpoint)
                yield Atomic([Access("R", flux), Access("W", flux, pc_flux_b)])
            yield Barrier()

            # Mesh-quality scan: a sample of random remote values is read
            # once (transient single-sweep readers, as re-partitioning
            # checks produce).
            total = self.num_nodes * self.mesh_nodes_per_thread
            for _ in range(int(self.mesh_nodes_per_thread * self.scan_rate)):
                yield Access("R", self.values.addr(rng.integers(0, total)))

            # Node update: integrate flux into value, reset flux.
            for mesh_node in self._own_mesh_nodes(tid):
                yield Access("R", self.fluxes.addr(mesh_node))
                yield Access("W", self.values.addr(mesh_node), pc_update)
                yield Access("W", self.fluxes.addr(mesh_node), pc_reset)
            yield Barrier()
