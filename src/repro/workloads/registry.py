"""Workload registry: the paper's benchmark suite by name (Table 3)."""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Type, Union

from repro.workloads.base import Workload
from repro.workloads.barnes import BarnesWorkload
from repro.workloads.em3d import Em3dWorkload
from repro.workloads.gauss import GaussWorkload
from repro.workloads.mp3d import Mp3dWorkload
from repro.workloads.ocean import OceanWorkload
from repro.workloads.unstruct import UnstructWorkload
from repro.workloads.water import WaterWorkload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine import MachineSpec

_WORKLOADS: Dict[str, Type[Workload]] = {
    "barnes": BarnesWorkload,
    "em3d": Em3dWorkload,
    "gauss": GaussWorkload,
    "mp3d": Mp3dWorkload,
    "ocean": OceanWorkload,
    "unstruct": UnstructWorkload,
    "water": WaterWorkload,
}

#: Benchmark names in the order the paper's tables list them.
BENCHMARK_NAMES: List[str] = sorted(_WORKLOADS)


def make_workload(
    name: str,
    num_nodes: int = 16,
    seed: int = 0,
    machine: Optional["MachineSpec"] = None,
    **params,
) -> Workload:
    """Instantiate a benchmark model by its paper name."""
    if name not in _WORKLOADS:
        raise ValueError(f"unknown benchmark {name!r}; known: {BENCHMARK_NAMES}")
    return _WORKLOADS[name](num_nodes=num_nodes, seed=seed, machine=machine, **params)


def stream_benchmark_trace(
    name: str,
    path: Union[str, os.PathLike],
    num_nodes: int = 16,
    seed: int = 0,
    quantum: int = 4,
    machine: Optional["MachineSpec"] = None,
    **params,
) -> Tuple[int, str]:
    """Generate one benchmark's trace straight into an ``.rtrace`` file.

    The protocol simulation streams settled events through a
    :class:`~repro.trace.interchange.TraceWriter`, so peak memory is the
    open-epoch span, not the trace length.  Returns ``(events,
    fingerprint)``; the fingerprint equals
    :func:`~repro.trace.source.stream_fingerprint` of the equivalent
    resident trace, so caches keyed on it are agnostic to how the trace
    was produced.
    """
    from repro.trace.interchange import TraceWriter

    workload = make_workload(
        name, num_nodes=num_nodes, seed=seed, machine=machine, **params
    )
    writer = TraceWriter(
        path, workload.num_nodes, name=workload.name or name,
        machine=workload.machine,
    )
    try:
        events = workload.stream_trace(writer, quantum=quantum)
        fingerprint = writer.close()
    except BaseException:
        writer.abort()
        raise
    return events, fingerprint


def default_workloads(
    num_nodes: int = 16,
    seed: int = 0,
    machine: Optional["MachineSpec"] = None,
) -> List[Workload]:
    """The full suite at default scale, in table order."""
    return [
        make_workload(name, num_nodes=num_nodes, seed=seed, machine=machine)
        for name in BENCHMARK_NAMES
    ]
