"""Shared-memory layout for workload models.

A :class:`MemoryLayout` is a bump allocator handing out line-aligned
:class:`SharedArray` regions.  Element size is explicit so that workloads
control false sharing the way real data structures do: 8-byte values pack
eight to a 64-byte line (em3d values), 32-byte records pack two (mp3d
cells), 64-byte records get a line to themselves (barnes bodies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class SharedArray:
    """A named contiguous region of ``count`` fixed-size elements."""

    name: str
    base: int
    count: int
    element_bytes: int

    def addr(self, index: int) -> int:
        """Byte address of element ``index``."""
        if not 0 <= index < self.count:
            raise IndexError(f"{self.name}[{index}] out of range (count={self.count})")
        return self.base + index * self.element_bytes

    @property
    def nbytes(self) -> int:
        return self.count * self.element_bytes

    def block_span(self, line_size: int) -> int:
        """Number of cache lines the array occupies."""
        end = self.base + self.nbytes
        return (end + line_size - 1) // line_size - self.base // line_size


class MemoryLayout:
    """Line-aligned bump allocator over a flat byte address space."""

    def __init__(self, line_size: int = 64):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError(f"line_size must be a power of two, got {line_size}")
        self.line_size = line_size
        self._next = line_size  # keep address 0 unused; eases debugging
        self._arrays: Dict[str, SharedArray] = {}

    def array(self, name: str, count: int, element_bytes: int) -> SharedArray:
        """Allocate a new line-aligned array; names must be unique."""
        if name in self._arrays:
            raise ValueError(f"array {name!r} already allocated")
        if count < 1 or element_bytes < 1:
            raise ValueError(
                f"array {name!r}: count and element_bytes must be positive "
                f"(got {count}, {element_bytes})"
            )
        base = self._next
        allocated = SharedArray(name=name, base=base, count=count, element_bytes=element_bytes)
        size = allocated.nbytes
        aligned = (size + self.line_size - 1) // self.line_size * self.line_size
        self._next = base + aligned
        self._arrays[name] = allocated
        return allocated

    def get(self, name: str) -> SharedArray:
        return self._arrays[name]

    @property
    def total_bytes(self) -> int:
        """Bytes allocated so far (line-aligned)."""
        return self._next - self.line_size
