"""ocean: nearest-neighbour stencil over strip-partitioned grids.

Red/black-free Jacobi sweeps between two grids, each thread owning a
horizontal strip.  The only communication is at strip boundaries: the first
and last rows of every strip are read by exactly one neighbouring thread.
Interior rows are written every sweep but read by nobody; because the grids
exceed the scaled cache (as 258x258 doubles exceeded 512 KB in the paper),
those rewrites still miss and emit zero-reader events.  The result is the
paper's lowest prevalence (Table 6: 2.14%, a degree of sharing of ~0.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.workloads.base import Access, Barrier, ThreadItem, Workload
from repro.workloads.layout import MemoryLayout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine import MachineSpec


class OceanWorkload(Workload):
    """Two-grid Jacobi relaxation (paper input: 258x258)."""

    name = "ocean"
    suggested_cache_bytes = 2 * 1024

    def __init__(
        self,
        num_nodes: int = 16,
        seed: int = 0,
        machine: Optional["MachineSpec"] = None,
        grid_size: int = 64,
        iterations: int = 6,
    ):
        super().__init__(num_nodes=num_nodes, seed=seed, machine=machine)
        num_nodes = self.num_nodes  # the spec may have resized the machine
        if grid_size % num_nodes:
            raise ValueError(
                f"grid_size {grid_size} must be a multiple of num_nodes {num_nodes}"
            )
        self.grid_size = grid_size
        self.iterations = iterations
        self.rows_per_thread = grid_size // num_nodes
        layout = MemoryLayout()
        self.grids = (
            layout.array("grid_a", grid_size * grid_size, 8),
            layout.array("grid_b", grid_size * grid_size, 8),
        )

    def _point(self, grid: int, row: int, col: int) -> int:
        return self.grids[grid].addr(row * self.grid_size + col)

    def _own_rows(self, tid: int) -> range:
        start = tid * self.rows_per_thread
        return range(start, start + self.rows_per_thread)

    def thread_programs(self) -> List[Iterator[ThreadItem]]:
        return [self._thread(tid) for tid in range(self.num_nodes)]

    def _thread(self, tid: int) -> Iterator[ThreadItem]:
        pc_init = self.pcs.site("init_point")
        pc_relax = {0: self.pcs.site("relax_into_a"), 1: self.pcs.site("relax_into_b")}
        size = self.grid_size

        # Owners first-touch their strips in both grids.
        for grid in (0, 1):
            for row in self._own_rows(tid):
                for col in range(size):
                    yield Access("W", self._point(grid, row, col), pc_init)
        yield Barrier()

        for iteration in range(self.iterations):
            source = iteration % 2
            target = 1 - source
            for row in self._own_rows(tid):
                for col in range(size):
                    if row > 0:
                        yield Access("R", self._point(source, row - 1, col))
                    if row < size - 1:
                        yield Access("R", self._point(source, row + 1, col))
                    if col > 0:
                        yield Access("R", self._point(source, row, col - 1))
                    if col < size - 1:
                        yield Access("R", self._point(source, row, col + 1))
                    yield Access("R", self._point(source, row, col))
                    yield Access("W", self._point(target, row, col), pc_relax[target])
            yield Barrier()
