"""Workload building blocks: reference items, pc sites, and the ABC.

A workload is a set of per-thread *programs*: generators yielding
:class:`Access` (one memory reference), :class:`Barrier` (rendezvous of all
threads), or :class:`Atomic` (a lock-protected burst the scheduler must not
interleave -- how migratory read-modify-write sequences are expressed).

Static store sites are modelled by :class:`PcAllocator`: each call site in a
workload's inner loops registers a named pc once and stores through it, so
instruction-indexed predictors see the small, stable static-store working
sets the paper measures in its Table 5.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Union

from repro.util.rng import DeterministicRng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine import MachineSpec


@dataclass(frozen=True)
class Access:
    """One memory reference: ``op`` is ``"R"`` or ``"W"``.

    ``pc`` identifies the static instruction (word-granular; only store pcs
    are meaningful to predictors, reads default to pc 0).
    """

    op: str
    address: int
    pc: int = 0

    def __post_init__(self) -> None:
        if self.op not in ("R", "W"):
            raise ValueError(f"op must be 'R' or 'W', got {self.op!r}")
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")


class Barrier:
    """All-thread rendezvous marker."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Barrier()"


@dataclass(frozen=True)
class Atomic:
    """A lock-protected burst of references, emitted without interleaving."""

    accesses: Tuple[Access, ...]

    def __init__(self, accesses):
        object.__setattr__(self, "accesses", tuple(accesses))


ThreadItem = Union[Access, Barrier, Atomic]


class PcAllocator:
    """Hands out stable pc values for named static store sites.

    Site ids start at 1 (0 is the anonymous read pc) and are assigned in
    registration order, so the same workload parameters always produce the
    same pcs.
    """

    def __init__(self):
        self._sites: Dict[str, int] = {}

    def site(self, name: str) -> int:
        pc = self._sites.get(name)
        if pc is None:
            pc = len(self._sites) + 1
            self._sites[name] = pc
        return pc

    @property
    def num_sites(self) -> int:
        return len(self._sites)

    def sites(self) -> Dict[str, int]:
        """Name -> pc mapping (for docs and tests)."""
        return dict(self._sites)


class Workload(ABC):
    """Base class for benchmark models.

    Subclasses define :meth:`thread_programs`; everything downstream
    (scheduler, system, harness) works through this interface.
    """

    #: benchmark name as used by the paper's tables
    name: str = ""

    def __init__(
        self,
        num_nodes: int = 16,
        seed: int = 0,
        machine: Optional["MachineSpec"] = None,
    ):
        # A machine spec, when given, *is* the machine: its node count wins
        # over the bare num_nodes default (subclasses re-read
        # ``self.num_nodes`` after delegating here).
        if machine is not None:
            num_nodes = machine.num_nodes
        if num_nodes < 2:
            raise ValueError(f"workloads need at least 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes
        self.machine = machine
        self.seed = seed
        self.pcs = PcAllocator()
        self.rng = DeterministicRng(f"{self.name}:{seed}")

    @abstractmethod
    def thread_programs(self) -> List[Iterator[ThreadItem]]:
        """One reference-stream generator per thread (len == num_nodes)."""

    def accesses(self, quantum: int = 4) -> Iterator[Tuple[int, str, int, int]]:
        """The workload's interleaved global reference stream.

        Yields ``(node, op, address, pc)`` in the machine's memory order, as
        consumed by :meth:`repro.memory.system.MultiprocessorSystem.run`.
        """
        from repro.workloads.scheduler import interleave

        return interleave(self.thread_programs(), quantum=quantum)

    def system_config(self):
        """The :class:`~repro.memory.system.SystemConfig` this model expects.

        Uses the workload's suggested (scaled) cache geometry -- the same
        defaults :func:`repro.harness.runner.generate_trace` applies -- so
        traces produced through any entry point agree byte for byte.
        """
        from repro.memory.cache import CacheConfig
        from repro.memory.system import SystemConfig

        cache_bytes = getattr(self, "suggested_cache_bytes", 32 * 1024)
        associativity = getattr(self, "suggested_cache_associativity", 4)
        return SystemConfig(
            num_nodes=self.num_nodes,
            cache=CacheConfig(
                size_bytes=cache_bytes, associativity=associativity, line_size=64
            ),
        )

    def stream_trace(self, sink, quantum: int = 4) -> int:
        """Run the protocol simulation, emitting trace events into ``sink``.

        ``sink`` is any ``write_columns`` column consumer -- typically a
        :class:`~repro.trace.interchange.TraceWriter`, making this the
        generate-to-disk path that never materializes the trace.  Returns
        the total event count; sealing the sink stays the caller's job.
        The emitted event stream is identical to what
        :func:`repro.harness.runner.generate_trace` materializes for the
        same parameters (same system construction, same scheduler).
        """
        from repro.memory.system import MultiprocessorSystem

        if self.machine is not None:
            system = MultiprocessorSystem(
                machine=self.machine, trace_name=self.name, trace_sink=sink
            )
        else:
            system = MultiprocessorSystem(
                self.system_config(), trace_name=self.name, trace_sink=sink
            )
        system.run(self.accesses(quantum=quantum))
        return system.finalize_trace()


@dataclass
class WorkloadScale:
    """Shared scale knobs used by several benchmark models."""

    timesteps: int = 4
    size_factor: float = 1.0

    def scaled(self, base: int) -> int:
        value = int(round(base * self.size_factor))
        return max(1, value)
