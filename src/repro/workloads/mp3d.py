"""mp3d: migratory sharing with effectively random writer succession.

mp3d simulates rarefied fluid flow: molecules (owned by threads) move
through space cells each step, and every move read-modify-writes the cell
the molecule lands in.  Which thread writes a given cell next is governed
by molecule positions -- effectively random, the canonical *migratory*
pattern the paper explicitly refuses to filter out (Section 1).  Space
cells are 32 bytes, two to a cache line, reproducing mp3d's famous false
sharing.  Occasional collisions make one thread read another's molecule
record, creating sparse single-reader epochs on molecule lines.

The model precomputes each molecule's cell path (a seeded random walk) so
traces are exactly reproducible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.workloads.base import Access, Atomic, Barrier, ThreadItem, Workload
from repro.workloads.layout import MemoryLayout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine import MachineSpec


class Mp3dWorkload(Workload):
    """Rarefied-flow Monte Carlo (paper input: 50K molecules)."""

    name = "mp3d"
    suggested_cache_bytes = 32 * 1024

    def __init__(
        self,
        num_nodes: int = 16,
        seed: int = 0,
        machine: Optional["MachineSpec"] = None,
        molecules_per_thread: int = 96,
        space_cells: int = 1024,
        collision_rate: float = 0.55,
        move_rate: float = 0.3,
        reservoir_lines: int = 8,
        steps: int = 8,
    ):
        super().__init__(num_nodes=num_nodes, seed=seed, machine=machine)
        num_nodes = self.num_nodes  # the spec may have resized the machine
        if not 0.0 <= collision_rate <= 1.0:
            raise ValueError(f"collision_rate must be in [0,1], got {collision_rate}")
        if not 0.0 <= move_rate <= 1.0:
            raise ValueError(f"move_rate must be in [0,1], got {move_rate}")
        self.molecules_per_thread = molecules_per_thread
        self.space_cells = space_cells
        self.collision_rate = collision_rate
        self.steps = steps

        total = num_nodes * molecules_per_thread
        layout = MemoryLayout()
        self.molecules = layout.array("molecules", total, 64)
        self.cells = layout.array("space_cells", space_cells, 32)
        self.reservoir = layout.array("reservoir", reservoir_lines, 64)

        rng = self.rng.spawn("paths")
        # cell_path[m][s]: the cell molecule m occupies at step s.  A slow
        # random walk with wraparound: molecules usually stay put for a few
        # steps (``move_rate``), so a cell's visitor set -- and hence its
        # writer-succession pattern -- changes gradually rather than being
        # redrawn every step.
        self.cell_path: List[List[int]] = []
        self.collision_partner: List[List[int]] = []
        for molecule in range(total):
            cell = rng.integers(0, space_cells)
            path: List[int] = []
            partners: List[int] = []
            for _ in range(steps):
                if rng.random() < move_rate:
                    cell = (cell + rng.choice([-2, -1, 1, 2])) % space_cells
                path.append(cell)
                if rng.random() < collision_rate:
                    partners.append(rng.integers(0, total))
                else:
                    partners.append(-1)
            self.cell_path.append(path)
            self.collision_partner.append(partners)

    def _own_molecules(self, tid: int) -> range:
        start = tid * self.molecules_per_thread
        return range(start, start + self.molecules_per_thread)

    def thread_programs(self) -> List[Iterator[ThreadItem]]:
        return [self._thread(tid) for tid in range(self.num_nodes)]

    def _thread(self, tid: int) -> Iterator[ThreadItem]:
        pc_init_molecule = self.pcs.site("init_molecule")
        pc_init_cell = self.pcs.site("init_cell")
        pc_move = self.pcs.site("move_molecule")
        pc_cell = self.pcs.site("update_cell")
        pc_reservoir = self.pcs.site("update_reservoir")
        rng = self.rng.spawn(f"thread:{tid}")

        # Owners first-touch their molecules; space cells are dealt out in
        # contiguous chunks (spatial decomposition of the domain).
        for molecule in self._own_molecules(tid):
            yield Access("W", self.molecules.addr(molecule), pc_init_molecule)
        cells_per_thread = self.space_cells // self.num_nodes
        for cell in range(tid * cells_per_thread, (tid + 1) * cells_per_thread):
            yield Access("W", self.cells.addr(cell), pc_init_cell)
        yield Barrier()

        for step in range(self.steps):
            for molecule in self._own_molecules(tid):
                cell_addr = self.cells.addr(self.cell_path[molecule][step])
                molecule_addr = self.molecules.addr(molecule)
                # move(): advance the molecule, then scatter into its cell,
                # all under the cell lock.  The boundary check also reads
                # the adjacent cell (no write), giving cells the occasional
                # extra reader the real code's geometry tests produce.
                here = self.cell_path[molecule][step]
                ahead = self.cells.addr((here + 1) % self.space_cells)
                behind = self.cells.addr((here - 1) % self.space_cells)
                yield Atomic(
                    [
                        Access("R", molecule_addr),
                        Access("W", molecule_addr, pc_move),
                        Access("R", cell_addr),
                        Access("R", ahead),
                        Access("R", behind),
                        Access("W", cell_addr, pc_cell),
                    ]
                )
                partner = self.collision_partner[molecule][step]
                if partner >= 0:
                    yield Access("R", self.molecules.addr(partner))
            # Per-step global bookkeeping on a random reservoir line.
            slot = rng.integers(0, self.reservoir.count)
            address = self.reservoir.addr(slot)
            yield Atomic([Access("R", address), Access("W", address, pc_reservoir)])
            yield Barrier()
