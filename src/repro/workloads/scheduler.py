"""Deterministic round-robin interleaving of thread programs.

The scheduler defines the machine's global memory order: threads take turns
emitting up to ``quantum`` references; a :class:`Barrier` parks a thread
until every live thread reaches its own barrier; an :class:`Atomic` burst is
emitted contiguously (the lock holder runs alone), regardless of quantum.

The interleaving is coarse compared to real hardware, but the sharing study
only needs a plausible relative ordering of conflicting accesses -- and the
paper's metrics are insensitive to timing (its Section 5.1).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.workloads.base import Access, Atomic, Barrier, ThreadItem


def interleave(
    programs: List[Iterator[ThreadItem]], quantum: int = 4
) -> Iterator[Tuple[int, str, int, int]]:
    """Merge per-thread programs into one ``(node, op, address, pc)`` stream."""
    if quantum < 1:
        raise ValueError(f"quantum must be >= 1, got {quantum}")
    iterators = [iter(program) for program in programs]
    finished = [False] * len(iterators)
    parked = [False] * len(iterators)

    def live_and_unparked() -> bool:
        return any(not finished[i] and not parked[i] for i in range(len(iterators)))

    while not all(finished):
        for tid, iterator in enumerate(iterators):
            if finished[tid] or parked[tid]:
                continue
            emitted = 0
            while emitted < quantum:
                try:
                    item = next(iterator)
                except StopIteration:
                    finished[tid] = True
                    break
                if isinstance(item, Barrier):
                    parked[tid] = True
                    break
                if isinstance(item, Atomic):
                    for access in item.accesses:
                        yield (tid, access.op, access.address, access.pc)
                    emitted += len(item.accesses)
                elif isinstance(item, Access):
                    yield (tid, item.op, item.address, item.pc)
                    emitted += 1
                else:
                    raise TypeError(f"thread {tid} yielded {item!r}")
        if not live_and_unparked():
            # Every live thread is waiting at the barrier: release them all.
            # (A thread that finished without reaching the barrier does not
            # block it -- matching pthread-style barriers re-initialized per
            # phase for the live thread count.)
            for tid in range(len(iterators)):
                parked[tid] = False
