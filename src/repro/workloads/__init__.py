"""Synthetic SPLASH-like workload models (substitute for the paper's traces).

Each module models one benchmark from the paper's Table 3 as a set of
per-thread memory-reference programs with barrier/lock synchronization,
reproducing that benchmark's documented *sharing structure* (who produces,
who consumes, how stable the relationship is) rather than its numerics.
See DESIGN.md section 2 for the substitution argument and EXPERIMENTS.md
for per-benchmark calibration against the paper's Tables 5 and 6.
"""

from repro.workloads.base import Access, Atomic, Barrier, PcAllocator, Workload
from repro.workloads.layout import MemoryLayout, SharedArray
from repro.workloads.scheduler import interleave
from repro.workloads.registry import (
    BENCHMARK_NAMES,
    default_workloads,
    make_workload,
)

__all__ = [
    "Access",
    "Atomic",
    "Barrier",
    "PcAllocator",
    "Workload",
    "MemoryLayout",
    "SharedArray",
    "interleave",
    "BENCHMARK_NAMES",
    "default_workloads",
    "make_workload",
]
