"""em3d: static producer-consumer sharing over a bipartite graph.

The real em3d propagates electromagnetic waves on a bipartite graph of E
and H nodes: each iteration recomputes every E value from ``degree`` H
neighbours, then every H value from E neighbours.  With 15% remote edges,
a value's remote readers form a *small, fixed* set -- the cleanest static
producer-consumer pattern in the paper's suite, and the reason em3d's
prevalence is the second lowest (paper Table 6: 3.19%).

Model specifics:

* values are 8-byte doubles, eight to a cache line, owned per-thread;
* edge lists are per-thread read-only arrays walked every iteration; they
  provide the capacity pressure that, combined with a scaled cache, turns
  purely-local value rewrites into write misses with empty reader sets
  (the paper's dilution of prevalence);
* remote neighbours cluster on a few preferred peer threads per owner, as
  first-touch placement of a partitioned graph produces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.workloads.base import Access, Barrier, ThreadItem, Workload
from repro.workloads.layout import MemoryLayout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine import MachineSpec


class Em3dWorkload(Workload):
    """Bipartite-graph wave propagation (paper input: 9600 nodes, degree 5)."""

    name = "em3d"
    suggested_cache_bytes = 4 * 1024

    def __init__(
        self,
        num_nodes: int = 16,
        seed: int = 0,
        machine: Optional["MachineSpec"] = None,
        nodes_per_thread: int = 224,
        degree: int = 5,
        remote_fraction: float = 0.03,
        preferred_peers: int = 2,
        scatter_rate: float = 0.02,
        iterations: int = 6,
    ):
        super().__init__(num_nodes=num_nodes, seed=seed, machine=machine)
        num_nodes = self.num_nodes  # the spec may have resized the machine
        if not 0.0 <= remote_fraction <= 1.0:
            raise ValueError(f"remote_fraction must be in [0,1], got {remote_fraction}")
        self.nodes_per_thread = nodes_per_thread
        self.degree = degree
        self.remote_fraction = remote_fraction
        self.preferred_peers = preferred_peers
        self.scatter_rate = scatter_rate
        self.iterations = iterations

        total = num_nodes * nodes_per_thread
        layout = MemoryLayout()
        self.values = {
            "e": layout.array("values_e", total, 8),
            "h": layout.array("values_h", total, 8),
        }
        self.edge_data = {
            "e": layout.array("edges_e", total * degree, 4),
            "h": layout.array("edges_h", total * degree, 4),
        }
        self.neighbors = {
            "e": self._build_neighbors("e"),
            "h": self._build_neighbors("h"),
        }

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------

    def _build_neighbors(self, half: str) -> List[List[int]]:
        """Neighbour lists in the *other* half for every node of ``half``."""
        rng = self.rng.spawn(f"graph:{half}")
        total = self.num_nodes * self.nodes_per_thread
        peers_of = [
            rng.sample(
                [peer for peer in range(self.num_nodes) if peer != tid],
                min(self.preferred_peers, self.num_nodes - 1),
            )
            for tid in range(self.num_nodes)
        ]
        neighbors: List[List[int]] = []
        for node in range(total):
            owner = node // self.nodes_per_thread
            chosen: List[int] = []
            for _ in range(self.degree):
                if rng.random() < self.remote_fraction:
                    peer = peers_of[owner][rng.integers(0, len(peers_of[owner]))]
                else:
                    peer = owner
                local_index = rng.integers(0, self.nodes_per_thread)
                chosen.append(peer * self.nodes_per_thread + local_index)
            neighbors.append(chosen)
        return neighbors

    def _owned_range(self, tid: int) -> range:
        start = tid * self.nodes_per_thread
        return range(start, start + self.nodes_per_thread)

    # ------------------------------------------------------------------
    # Thread programs
    # ------------------------------------------------------------------

    def thread_programs(self) -> List[Iterator[ThreadItem]]:
        return [self._thread(tid) for tid in range(self.num_nodes)]

    def _thread(self, tid: int) -> Iterator[ThreadItem]:
        rng = self.rng.spawn(f"scatter:{tid}")
        total = self.num_nodes * self.nodes_per_thread
        pc_init = {half: self.pcs.site(f"init_{half}") for half in ("e", "h")}
        pc_init_edges = {half: self.pcs.site(f"init_edges_{half}") for half in ("e", "h")}
        pc_update = {half: self.pcs.site(f"update_{half}") for half in ("e", "h")}

        # Initialization: owners first-touch their values and edge lists.
        for half in ("e", "h"):
            values = self.values[half]
            edges = self.edge_data[half]
            for node in self._owned_range(tid):
                yield Access("W", values.addr(node), pc_init[half])
                for slot in range(self.degree):
                    yield Access(
                        "W", edges.addr(node * self.degree + slot), pc_init_edges[half]
                    )
        yield Barrier()

        # Wave propagation: E from H, then H from E, every iteration.
        for _ in range(self.iterations):
            for half, other in (("e", "h"), ("h", "e")):
                values = self.values[half]
                other_values = self.values[other]
                edges = self.edge_data[half]
                neighbors = self.neighbors[half]
                for node in self._owned_range(tid):
                    for slot, neighbor in enumerate(neighbors[node]):
                        yield Access("R", edges.addr(node * self.degree + slot))
                        yield Access("R", other_values.addr(neighbor))
                    # Convergence checks sample a random remote value now
                    # and then: one-iteration transient readers.
                    if rng.random() < self.scatter_rate:
                        yield Access("R", other_values.addr(rng.integers(0, total)))
                    yield Access("W", values.addr(node), pc_update[half])
                yield Barrier()
