"""water: cutoff pair interactions with lock-protected force accumulation.

Each molecule keeps two records: a *position* line, rewritten by its owner
once per step and read by the owners of every molecule within the cutoff
(a stable several-reader producer-consumer set), and a *force* line,
accumulated into under a lock by each interacting remote owner and then
consumed and reset by its own owner (a short migratory chain whose order
is stable across steps).  The blend of the two yields the paper's 12.13%
prevalence at a small block count (Table 5: water touches only ~2.9K
blocks), which we match by keeping the molecule count low and the
neighbour sets dense.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.workloads.base import Access, Atomic, Barrier, ThreadItem, Workload
from repro.workloads.layout import MemoryLayout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine import MachineSpec


class WaterWorkload(Workload):
    """Molecular dynamics with a cutoff radius (paper input: 512 molecules)."""

    name = "water"
    suggested_cache_bytes = 32 * 1024

    def __init__(
        self,
        num_nodes: int = 16,
        seed: int = 0,
        machine: Optional["MachineSpec"] = None,
        molecules_per_thread: int = 18,
        neighbors_per_molecule: int = 18,
        preferred_peers: int = 5,
        local_bias: float = 0.20,
        cutoff_rate: float = 0.18,
        steps: int = 6,
    ):
        super().__init__(num_nodes=num_nodes, seed=seed, machine=machine)
        num_nodes = self.num_nodes  # the spec may have resized the machine
        if not 0.0 <= cutoff_rate <= 1.0:
            raise ValueError(f"cutoff_rate must be in [0,1], got {cutoff_rate}")
        self.molecules_per_thread = molecules_per_thread
        self.neighbors_per_molecule = neighbors_per_molecule
        self.cutoff_rate = cutoff_rate
        self.steps = steps

        total = num_nodes * molecules_per_thread
        layout = MemoryLayout()
        self.positions = layout.array("positions", total, 64)
        self.forces = layout.array("forces", total, 64)

        rng = self.rng.spawn("structure")
        peers_of = [
            rng.sample(
                [peer for peer in range(num_nodes) if peer != tid],
                min(preferred_peers, num_nodes - 1),
            )
            for tid in range(num_nodes)
        ]
        # Static cutoff neighbour lists, biased to preferred peers so each
        # molecule's reader set is small and stable.
        self.neighbors: List[List[int]] = []
        for molecule in range(total):
            owner = molecule // molecules_per_thread
            chosen: List[int] = []
            for _ in range(neighbors_per_molecule):
                if rng.random() < local_bias:
                    peer = owner
                else:
                    peer = peers_of[owner][rng.integers(0, len(peers_of[owner]))]
                chosen.append(peer * molecules_per_thread + rng.integers(0, molecules_per_thread))
            self.neighbors.append(chosen)

    def _own_molecules(self, tid: int) -> range:
        start = tid * self.molecules_per_thread
        return range(start, start + self.molecules_per_thread)

    def _owner(self, molecule: int) -> int:
        return molecule // self.molecules_per_thread

    def thread_programs(self) -> List[Iterator[ThreadItem]]:
        return [self._thread(tid) for tid in range(self.num_nodes)]

    def _thread(self, tid: int) -> Iterator[ThreadItem]:
        pc_init_pos = self.pcs.site("init_position")
        pc_init_force = self.pcs.site("init_force")
        pc_accumulate = self.pcs.site("accumulate_force")
        pc_update = self.pcs.site("update_position")
        pc_reset = self.pcs.site("reset_force")

        for molecule in self._own_molecules(tid):
            yield Access("W", self.positions.addr(molecule), pc_init_pos)
            yield Access("W", self.forces.addr(molecule), pc_init_force)
        yield Barrier()

        # Whether a pair sits inside the cutoff persists between steps --
        # molecules drift slowly -- so the in-cutoff set is a slowly churning
        # subset rather than a fresh draw (this stability is what deep
        # intersection predictors exploit in the real program).
        rng = self.rng.spawn(f"cutoff:{tid}")
        pairs = [
            (molecule, slot)
            for molecule in self._own_molecules(tid)
            for slot in range(self.neighbors_per_molecule)
        ]
        in_cutoff = {pair: rng.random() < self.cutoff_rate for pair in pairs}
        # Residence in the cutoff is bimodal: most in-cutoff pairs are bound
        # neighbours that stay for many steps, while pairs near the cutoff
        # radius flicker in and out within a step or two.  The flickering
        # population is what separates shallow from deep intersection
        # predictors.
        flickery = {pair: rng.random() < 0.35 for pair in pairs}
        rate = self.cutoff_rate
        churn_of = {True: 0.60, False: 0.03}
        enter_of = {
            flag: churn_of[flag] * rate / max(1e-9, 1.0 - rate) for flag in (True, False)
        }
        for _ in range(self.steps):
            # Inter-molecular forces: read every neighbour's position, and
            # accumulate into the force records of neighbours inside the
            # cutoff this step.  As in the real code, contributions are
            # summed locally first and each touched remote record is
            # written once per step (one lock acquisition per target).
            touched: List[int] = []
            seen = set()
            for molecule in self._own_molecules(tid):
                yield Access("R", self.positions.addr(molecule))
                for slot, neighbor in enumerate(self.neighbors[molecule]):
                    yield Access("R", self.positions.addr(neighbor))
                    key = (molecule, slot)
                    churn = churn_of[flickery[key]]
                    if in_cutoff[key]:
                        if rng.random() < churn:
                            in_cutoff[key] = False
                    elif rng.random() < enter_of[flickery[key]]:
                        in_cutoff[key] = True
                    if in_cutoff[key] and neighbor not in seen:
                        seen.add(neighbor)
                        touched.append(neighbor)
            for neighbor in touched:
                force_addr = self.forces.addr(neighbor)
                yield Atomic(
                    [Access("R", force_addr), Access("W", force_addr, pc_accumulate)]
                )
            yield Barrier()

            # Integration: consume own forces, publish new positions.
            for molecule in self._own_molecules(tid):
                yield Access("R", self.forces.addr(molecule))
                yield Access("W", self.positions.addr(molecule), pc_update)
                yield Access("W", self.forces.addr(molecule), pc_reset)
            yield Barrier()
