"""barnes: Barnes-Hut N-body with wide body sharing and migratory tree cells.

Two sharing populations drive the paper's highest prevalence (Table 6:
15.10%):

* **bodies** — each body's record is rewritten by its owner every timestep
  and read during force computation by every thread whose interaction list
  contains it: a stable, several-reader producer-consumer relation (we draw
  interaction partners mostly from a few preferred peers, as spatial
  locality does in the real code);
* **tree cells** — rebuilt every timestep by whichever threads' bodies land
  in them, under locks: migratory read-modify-write chains, widely read
  during the force phase.

Body records are 64 bytes (one line each, as in SPLASH), so there is no
false sharing among bodies; cells share that property.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.workloads.base import Access, Atomic, Barrier, ThreadItem, Workload
from repro.workloads.layout import MemoryLayout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine import MachineSpec


class BarnesWorkload(Workload):
    """Hierarchical N-body (paper input: 8K particles)."""

    name = "barnes"
    suggested_cache_bytes = 8 * 1024

    def __init__(
        self,
        num_nodes: int = 16,
        seed: int = 0,
        machine: Optional["MachineSpec"] = None,
        bodies_per_thread: int = 48,
        cells: int = 256,
        interaction_bodies: int = 5,
        interaction_cells: int = 6,
        preferred_peers: int = 3,
        local_bias: float = 0.7,
        transient_read_rate: float = 0.5,
        tree_depth: int = 2,
        timesteps: int = 5,
    ):
        super().__init__(num_nodes=num_nodes, seed=seed, machine=machine)
        num_nodes = self.num_nodes  # the spec may have resized the machine
        if not 0.0 <= transient_read_rate <= 1.0:
            raise ValueError(
                f"transient_read_rate must be in [0,1], got {transient_read_rate}"
            )
        self.transient_read_rate = transient_read_rate
        self.bodies_per_thread = bodies_per_thread
        self.num_cells = cells
        self.interaction_bodies = interaction_bodies
        self.interaction_cells = interaction_cells
        self.tree_depth = tree_depth
        self.timesteps = timesteps

        total_bodies = num_nodes * bodies_per_thread
        layout = MemoryLayout()
        self.bodies = layout.array("bodies", total_bodies, 64)
        self.cells = layout.array("cells", cells, 64)

        rng = self.rng.spawn("structure")
        peers_of = [
            rng.sample(
                [peer for peer in range(num_nodes) if peer != tid],
                min(preferred_peers, num_nodes - 1),
            )
            for tid in range(num_nodes)
        ]

        # Static interaction lists: mostly bodies of preferred peers.
        self.interactions: List[List[int]] = []
        self.cell_reads: List[List[int]] = []
        self.insert_paths: List[List[int]] = []
        for body in range(total_bodies):
            owner = body // bodies_per_thread
            partners: List[int] = []
            for _ in range(interaction_bodies):
                if rng.random() < local_bias:
                    peer = peers_of[owner][rng.integers(0, len(peers_of[owner]))]
                else:
                    peer = rng.integers(0, num_nodes)
                partners.append(peer * bodies_per_thread + rng.integers(0, bodies_per_thread))
            self.interactions.append(partners)
            self.cell_reads.append(
                [rng.integers(0, cells) for _ in range(interaction_cells)]
            )
            # Tree-insert path: a coarse cell (the top of the octree) plus
            # tree_depth - 1 finer cells; coarse cells are few and hot.
            coarse = rng.integers(0, min(16, cells))
            path = [coarse]
            for _ in range(tree_depth - 1):
                path.append(16 + rng.integers(0, cells - 16))
            self.insert_paths.append(path)

    def _own_bodies(self, tid: int) -> range:
        start = tid * self.bodies_per_thread
        return range(start, start + self.bodies_per_thread)

    def thread_programs(self) -> List[Iterator[ThreadItem]]:
        return [self._thread(tid) for tid in range(self.num_nodes)]

    def _thread(self, tid: int) -> Iterator[ThreadItem]:
        rng = self.rng.spawn(f"walk:{tid}")
        total_bodies = self.num_nodes * self.bodies_per_thread
        pc_init_body = self.pcs.site("init_body")
        pc_init_cell = self.pcs.site("init_cell")
        pc_insert = self.pcs.site("tree_insert")
        pc_position = self.pcs.site("update_position")
        pc_velocity = self.pcs.site("update_velocity")

        # Owners first-touch their bodies; thread 0 first-touches the tree
        # (the real code allocates the tree from a shared arena).
        for body in self._own_bodies(tid):
            yield Access("W", self.bodies.addr(body), pc_init_body)
        if tid == 0:
            for cell in range(self.num_cells):
                yield Access("W", self.cells.addr(cell), pc_init_cell)
        yield Barrier()

        for _ in range(self.timesteps):
            # Tree build: lock-protected insertion along each body's path.
            for body in self._own_bodies(tid):
                for cell in self.insert_paths[body]:
                    address = self.cells.addr(cell)
                    yield Atomic(
                        [Access("R", address), Access("W", address, pc_insert)]
                    )
            yield Barrier()

            # Force computation: read own body, partner bodies, and cells.
            # The tree walk also brushes a few bodies outside the stable
            # interaction set (opening criteria flip as bodies move):
            # one-timestep transient readers that a deep-intersection
            # predictor should learn to ignore.
            for body in self._own_bodies(tid):
                yield Access("R", self.bodies.addr(body))
                for partner in self.interactions[body]:
                    yield Access("R", self.bodies.addr(partner))
                if rng.random() < self.transient_read_rate:
                    stray = rng.integers(0, total_bodies)
                    yield Access("R", self.bodies.addr(stray))
                for cell in self.cell_reads[body]:
                    yield Access("R", self.cells.addr(cell))
            yield Barrier()

            # Update: two stores to the owner's body record.
            for body in self._own_bodies(tid):
                address = self.bodies.addr(body)
                yield Access("W", address, pc_position)
                yield Access("W", address, pc_velocity)
            yield Barrier()
