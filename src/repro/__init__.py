"""repro: coherence communication prediction in shared-memory multiprocessors.

A full reproduction of Kaxiras & Young (HPCA 2000): the predictor taxonomy
(access x prediction x update), the screening-test metrics (prevalence,
sensitivity, PVP), the memory-system and workload substrates that generate
sharing traces, and the harness that regenerates every table and figure of
the paper's evaluation.

Quickstart::

    from repro import parse_scheme, evaluate_scheme_fast, ScreeningStats
    from repro.harness import default_trace_set

    trace = default_trace_set().trace("barnes")
    counts = evaluate_scheme_fast(parse_scheme("inter(pid+add6)4[direct]"), trace)
    print(ScreeningStats.from_counts(counts))
"""

from repro.core import (
    IndexSpec,
    Scheme,
    UpdateMode,
    enumerate_schemes,
    evaluate_scheme,
    evaluate_scheme_fast,
    parse_scheme,
)
from repro.metrics import ConfusionCounts, ScreeningStats
from repro.trace import SharingEvent, SharingTrace

__version__ = "1.0.0"

__all__ = [
    "IndexSpec",
    "Scheme",
    "UpdateMode",
    "enumerate_schemes",
    "evaluate_scheme",
    "evaluate_scheme_fast",
    "parse_scheme",
    "ConfusionCounts",
    "ScreeningStats",
    "SharingEvent",
    "SharingTrace",
    "__version__",
]
