"""Address geometry and home-directory placement.

Blocks are identified by their block number (``address >> log2(line_size)``)
throughout the system; byte addresses only exist at the workload boundary.

Home placement supports the paper's setup: data placement "is either done
explicitly by the programmer or by RSIM which uses a first-touch policy on a
cache-line granularity".  First-touch is the default; round-robin
interleaving is available for experiments on placement sensitivity.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict


class HomePolicy(Enum):
    """How a block's home directory is chosen."""

    FIRST_TOUCH = "first-touch"
    INTERLEAVED = "interleaved"


class AddressSpace:
    """Byte-address to block-number mapping plus home assignment."""

    def __init__(
        self,
        num_nodes: int,
        line_size: int = 64,
        home_policy: HomePolicy = HomePolicy.FIRST_TOUCH,
    ):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError(f"line_size must be a positive power of two, got {line_size}")
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        self.line_size = line_size
        self.offset_bits = line_size.bit_length() - 1
        self.home_policy = home_policy
        self._homes: Dict[int, int] = {}

    def block_of(self, address: int) -> int:
        """Block number containing a byte address."""
        if address < 0:
            raise ValueError(f"addresses must be non-negative, got {address}")
        return address >> self.offset_bits

    def home_of(self, block: int, toucher: int) -> int:
        """Home directory of a block, assigning it on first touch.

        Under ``FIRST_TOUCH`` the first node to reference the block becomes
        its home (and keeps it forever); under ``INTERLEAVED`` homes rotate
        by block number.
        """
        home = self._homes.get(block)
        if home is None:
            if not 0 <= toucher < self.num_nodes:
                raise ValueError(f"toucher {toucher} out of range for {self.num_nodes} nodes")
            if self.home_policy is HomePolicy.INTERLEAVED:
                home = block % self.num_nodes
            else:
                home = toucher
            self._homes[block] = home
        return home

    @property
    def blocks_touched(self) -> int:
        """Number of distinct blocks that have been assigned a home."""
        return len(self._homes)
