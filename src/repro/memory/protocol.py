"""The MSI invalidation protocol engine, and the epoch-level replay path.

The first half of this module processes per-node reads and writes against
the caches and directory, generating the machine's coherence behaviour:

* **read miss** — fetch a shared copy; a modified owner is downgraded to
  shared (sharing writeback).  The reader's access bit is set in the open
  epoch (unless it is the epoch's own writer).
* **write** — silent if the writer already holds the line modified;
  otherwise a coherence store (write miss, or write fault when the writer
  holds a shared copy), which invalidates every other copy, closes the
  block's epoch, and opens a new one.  These coherence stores are exactly
  the paper's prediction events.
* **replacement** — LRU victim is written back (modified) or silently
  dropped with a replacement hint (shared).  Evicted readers keep their
  epoch access bits: they truly read the data.

The engine is timing-free; requests complete atomically in program
interleaving order, which is all the sharing study needs (paper Section 5.1).

The second half is :class:`EpochProtocol`, the epoch-granularity replay of
a *finalized* sharing trace with an optional data-forwarding path.  Where
:class:`CoherenceProtocol` consumes raw accesses and produces a trace, the
replay consumes the trace's events (one per coherence store, each carrying
its epoch's eventual reader set) and reproduces the directory's epoch
lifecycle -- invalidate the old copies, install the new owner, serve the
epoch's readers -- while additionally pushing the written line to any
predicted readers.  Forwarded copies sit in a staging buffer until the
recipient actually reads (then they become ordinary shared copies) or the
epoch closes (then they self-invalidate silently: the staging buffer keeps
no access rights, so dropping a stale forward costs no message).  That
choice keeps invalidation traffic identical between the baseline and
forwarding runs, which is what makes the traffic ledgers of
:mod:`repro.forwarding` exactly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.machine import MachineSpec
from repro.memory.address import AddressSpace
from repro.memory.cache import EXCLUSIVE, MODIFIED, SHARED, CacheConfig, SetAssociativeCache
from repro.memory.directory import Directory, DirectoryEntry, DirState
from repro.trace.builder import SharingTraceBuilder
from repro.util.bitmaps import iter_set_bits, popcount


@dataclass
class ProtocolStats:
    """Counters for Table-5-style statistics and protocol sanity checks."""

    reads: int = 0
    writes: int = 0
    read_hits: int = 0
    read_misses: int = 0
    silent_writes: int = 0
    exclusive_grants: int = 0  # MESI only: read misses granted E
    exclusive_upgrades: int = 0  # MESI only: silent E -> M writes
    write_misses: int = 0
    write_upgrades: int = 0
    invalidations_sent: int = 0
    writebacks: int = 0
    replacements: int = 0
    # static-store tracking: distinct store pcs per node, and the subset
    # that generated prediction events
    store_pcs_by_node: List[Set[int]] = field(default_factory=list)
    predicted_pcs_by_node: List[Set[int]] = field(default_factory=list)

    @property
    def coherence_store_misses(self) -> int:
        """Stores that performed a coherence action (= prediction events)."""
        return self.write_misses + self.write_upgrades

    def max_static_stores_per_node(self) -> int:
        return max((len(pcs) for pcs in self.store_pcs_by_node), default=0)

    def max_predicted_stores_per_node(self) -> int:
        return max((len(pcs) for pcs in self.predicted_pcs_by_node), default=0)


class CoherenceProtocol:
    """MSI + full-map directory over one cache per node."""

    def __init__(
        self,
        num_nodes: int,
        cache_config: CacheConfig,
        address_space: AddressSpace,
        trace_name: str = "trace",
        use_exclusive_state: bool = False,
        machine: "MachineSpec | None" = None,
        builder=None,
    ):
        if address_space.num_nodes != num_nodes:
            raise ValueError(
                f"address space is for {address_space.num_nodes} nodes, protocol for {num_nodes}"
            )
        if address_space.line_size != cache_config.line_size:
            raise ValueError(
                f"line size mismatch: address space {address_space.line_size}, "
                f"cache {cache_config.line_size}"
            )
        self.num_nodes = num_nodes
        self.use_exclusive_state = use_exclusive_state
        self.machine = machine
        self.address_space = address_space
        self.caches = [SetAssociativeCache(cache_config) for _ in range(num_nodes)]
        self.directory = Directory()
        # Any object with the builder surface (add_event / add_reader /
        # __len__ / finalize) works -- a StreamingTraceBuilder here is how
        # workload traces flow straight into a TraceWriter sink without
        # ever being resident.
        if builder is None:
            builder = SharingTraceBuilder(num_nodes, name=trace_name, machine=machine)
        self.builder = builder
        self.stats = ProtocolStats(
            store_pcs_by_node=[set() for _ in range(num_nodes)],
            predicted_pcs_by_node=[set() for _ in range(num_nodes)],
        )

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def read(self, node: int, address: int) -> None:
        """Process a load by ``node``."""
        self.stats.reads += 1
        block = self.address_space.block_of(address)
        cache = self.caches[node]
        if cache.get_state(block) is not None:
            cache.touch(block)
            self.stats.read_hits += 1
            return

        self.stats.read_misses += 1
        home = self.address_space.home_of(block, node)
        entry = self.directory.entry(block, home)

        fill_state = SHARED
        if entry.state is DirState.EXCLUSIVE and entry.owner != node:
            # Owner supplies data and downgrades to shared; a dirty copy is
            # written back, a clean E copy just drops to S.
            owner_cache = self.caches[entry.owner]
            owner_state = owner_cache.get_state(block)
            if owner_state == MODIFIED:
                owner_cache.set_state(block, SHARED)
                self.stats.writebacks += 1
            elif owner_state == EXCLUSIVE:
                owner_cache.set_state(block, SHARED)
            entry.state = DirState.SHARED
        elif entry.state is DirState.UNCACHED:
            if self.use_exclusive_state and entry.sharers == 0:
                # MESI: the sole reader of an uncached block gets the line
                # exclusive-clean, so a subsequent write by it is silent.
                entry.state = DirState.EXCLUSIVE
                entry.owner = node
                fill_state = EXCLUSIVE
                self.stats.exclusive_grants += 1
            else:
                entry.state = DirState.SHARED
                entry.owner = None

        entry.add_sharer(node)
        if entry.epoch_writer is not None and entry.epoch_writer != node:
            entry.epoch_readers |= 1 << node
        self.builder.add_reader(block, node)
        self._fill(node, block, fill_state)

    def write(self, node: int, address: int, pc: int) -> None:
        """Process a store by ``node`` under static store ``pc``."""
        self.stats.writes += 1
        block = self.address_space.block_of(address)
        self.stats.store_pcs_by_node[node].add(pc)
        cache = self.caches[node]
        state = cache.get_state(block)
        if state == MODIFIED:
            cache.touch(block)
            self.stats.silent_writes += 1
            return
        if state == EXCLUSIVE:
            # MESI: silent upgrade -- no coherence action, no prediction
            # event, and (as on real hardware) the directory never learns a
            # new value was created until the next remote access.
            cache.set_state(block, MODIFIED)
            cache.touch(block)
            self.stats.silent_writes += 1
            self.stats.exclusive_upgrades += 1
            return

        if state == SHARED:
            self.stats.write_upgrades += 1
        else:
            self.stats.write_misses += 1
        self.stats.predicted_pcs_by_node[node].add(pc)

        home = self.address_space.home_of(block, node)
        entry = self.directory.entry(block, home)

        # Invalidate every other copy in the machine.
        for sharer in iter_set_bits(entry.sharers & ~(1 << node)):
            invalidated = self.caches[sharer].invalidate(block)
            if invalidated is not None:
                self.stats.invalidations_sent += 1
                if invalidated == MODIFIED:
                    self.stats.writebacks += 1

        # Close the previous epoch, open the new one (the prediction event).
        self.builder.add_event(writer=node, pc=pc, home=home, block=block)
        entry.state = DirState.EXCLUSIVE
        entry.owner = node
        entry.sharers = 1 << node
        entry.epoch_writer = node
        entry.epoch_readers = 0
        entry.epoch_event = len(self.builder) - 1
        self._fill(node, block, MODIFIED)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _fill(self, node: int, block: int, state: int) -> None:
        """Install a line in ``node``'s cache, handling the LRU victim."""
        victim = self.caches[node].insert(block, state)
        if victim is None:
            return
        victim_block, victim_state = victim
        self.stats.replacements += 1
        victim_entry = self.directory.get(victim_block)
        if victim_entry is None:  # pragma: no cover - cached blocks have entries
            raise AssertionError(f"cache held block {victim_block} unknown to directory")
        victim_entry.remove_sharer(node)
        if victim_state == MODIFIED:
            # Dirty writeback: home memory now holds the value; nobody caches it.
            self.stats.writebacks += 1
            victim_entry.state = DirState.UNCACHED
            victim_entry.owner = None
        elif victim_entry.sharers == 0:
            # Replacement hint emptied the sharer set.
            victim_entry.state = DirState.UNCACHED
            victim_entry.owner = None
        # Note: the epoch bookkeeping survives eviction on purpose; sharing
        # epochs are delimited by writes, not by residency.

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def finalize_trace(self):
        """Build the immutable sharing trace for everything processed so far."""
        return self.builder.finalize()

    def check_invariants(self) -> None:
        """Cross-check caches against the directory (used by tests).

        * single-writer: a modified line is cached exactly once;
        * presence: every cached copy has its directory presence bit set,
          and vice versa;
        * state agreement: EXCLUSIVE entries have a modified owner copy,
          SHARED entries have no modified copies.
        """
        cached_state: Dict[Tuple[int, int], int] = {}
        for node, cache in enumerate(self.caches):
            for block in cache.resident_blocks():
                cached_state[(node, block)] = cache.get_state(block)

        for (node, block), state in cached_state.items():
            entry = self.directory.get(block)
            if entry is None:
                raise AssertionError(f"node {node} caches block {block} with no entry")
            if not entry.has_sharer(node):
                raise AssertionError(
                    f"node {node} caches block {block} without a presence bit"
                )
            if state in (MODIFIED, EXCLUSIVE):
                if entry.state is not DirState.EXCLUSIVE or entry.owner != node:
                    raise AssertionError(
                        f"exclusive/modified copy of block {block} at node {node} but "
                        f"directory says {entry.state}/{entry.owner}"
                    )

        for block, entry in self.directory.entries.items():
            for node in iter_set_bits(entry.sharers):
                if (node, block) not in cached_state:
                    raise AssertionError(
                        f"directory lists node {node} for block {block} but cache lacks it"
                    )
            if entry.state is DirState.EXCLUSIVE:
                if entry.owner is None or cached_state.get((entry.owner, block)) not in (
                    MODIFIED,
                    EXCLUSIVE,
                ):
                    raise AssertionError(
                        f"EXCLUSIVE block {block} lacks an owner copy in M or E"
                    )
            exclusive_holders = [
                node
                for node in iter_set_bits(entry.sharers)
                if cached_state.get((node, block)) in (MODIFIED, EXCLUSIVE)
            ]
            if entry.state is not DirState.EXCLUSIVE and exclusive_holders:
                raise AssertionError(
                    f"block {block} in state {entry.state} has exclusive copies at "
                    f"{exclusive_holders}"
                )
            if len(exclusive_holders) > 1:
                raise AssertionError(
                    f"block {block} has multiple exclusive copies at {exclusive_holders}"
                )


# ----------------------------------------------------------------------
# Epoch-level replay with a forwarding path
# ----------------------------------------------------------------------


@dataclass
class EpochTransition:
    """What one replayed event did to its block (all sets are bitmaps).

    ``invalidated`` covers the previous epoch's legitimate copies (its
    writer and readers, minus the new writer if it already held one);
    ``expired_forwards`` are staged copies that were never read and
    self-invalidate without traffic.  ``demand_readers`` +
    ``consumed_forwards`` partition the new epoch's true reader set by how
    each reader obtained the line.
    """

    writer: int
    block: int
    invalidated: int = 0
    expired_forwards: int = 0
    forwarded: int = 0
    consumed_forwards: int = 0
    demand_readers: int = 0


@dataclass
class EpochReplayStats:
    """Aggregate counters over one :class:`EpochProtocol` replay."""

    events: int = 0
    copies_invalidated: int = 0
    forwards_pushed: int = 0
    forwards_consumed: int = 0
    forwards_expired: int = 0
    demand_reads: int = 0


@dataclass
class _BlockEpochState:
    """Per-block directory view between replayed events."""

    owner: int
    holders: int  # presence bitmap of real (readable) copies, incl. owner
    staged: int  # forwarded-but-unread copies; disjoint from holders
    modified: bool  # owner holds the only copy, dirty


class EpochProtocol:
    """Directory replay of sharing events, with an optional forwarding path.

    Each :meth:`apply_event` call processes one coherence store *and* the
    whole epoch it opens: prior copies are invalidated, the writer becomes
    the modified owner, predicted readers (``forward_to``) receive staged
    copies, and the epoch's true readers then either consume their staged
    copy or demand-fetch from the owner (downgrading it to shared).  With
    ``forward_to == 0`` this is exactly the baseline invalidate protocol.

    The replay validates the trace's epoch linkage as it goes (the
    directory's reader view at each close must equal the event's
    invalidation bitmap) and :meth:`check_invariants` asserts SWMR --
    single writer *or* multiple readers, never both -- plus staging
    discipline after any event.
    """

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        self.blocks: Dict[int, _BlockEpochState] = {}
        self.stats = EpochReplayStats()

    def apply_event(
        self,
        writer: int,
        block: int,
        truth: int,
        forward_to: int = 0,
        inval: int = 0,
        has_inval: bool = False,
    ) -> EpochTransition:
        """Replay one event and the epoch it opens; returns the transition."""
        writer_bit = 1 << writer
        state = self.blocks.get(block)
        if state is None:
            if has_inval:
                raise ValueError(
                    f"event on block {block} closes an epoch the replay never saw"
                )
            invalidated = 0
            expired = 0
        else:
            readers_seen = state.holders & ~(1 << state.owner)
            if has_inval and readers_seen != inval:
                raise ValueError(
                    f"block {block}: directory saw readers {readers_seen:#x} "
                    f"but the closing event invalidates {inval:#x}"
                )
            invalidated = state.holders & ~writer_bit
            expired = state.staged

        # Open the new epoch: the writer is the sole, modified owner...
        push = forward_to & ~writer_bit
        consumed = push & truth
        demand = truth & ~push
        # ...then serve the epoch's readers: staged copies are consumed in
        # place, everyone else demand-fetches; any remote read downgrades
        # the owner to shared.
        if state is None:
            state = _BlockEpochState(
                owner=writer, holders=0, staged=0, modified=False
            )
            self.blocks[block] = state
        state.owner = writer
        state.holders = writer_bit | truth
        state.staged = push & ~truth
        state.modified = truth == 0

        stats = self.stats
        stats.events += 1
        stats.copies_invalidated += popcount(invalidated)
        stats.forwards_pushed += popcount(push)
        stats.forwards_consumed += popcount(consumed)
        stats.forwards_expired += popcount(expired)
        stats.demand_reads += popcount(demand)
        return EpochTransition(
            writer=writer,
            block=block,
            invalidated=invalidated,
            expired_forwards=expired,
            forwarded=push,
            consumed_forwards=consumed,
            demand_readers=demand,
        )

    def apply(self, event, forward_to: int = 0) -> EpochTransition:
        """Replay one :class:`~repro.trace.events.SharingEvent` record."""
        return self.apply_event(
            event.writer,
            event.block,
            event.truth,
            forward_to=forward_to,
            inval=event.inval,
            has_inval=event.has_inval,
        )

    def check_invariants(self) -> None:
        """Assert SWMR and staging discipline on every replayed block.

        * a modified block is held by exactly its owner (single writer);
        * a block with readers is not modified (multiple readers are all
          shared);
        * the owner always holds a copy of its block;
        * staged (forwarded-but-unread) copies never overlap real copies
          and the owner never stages its own line.
        """
        for block, state in self.blocks.items():
            owner_bit = 1 << state.owner
            if not state.holders & owner_bit:
                raise AssertionError(
                    f"block {block}: owner {state.owner} holds no copy"
                )
            if state.modified and state.holders != owner_bit:
                raise AssertionError(
                    f"block {block}: modified but holders {state.holders:#x} != "
                    f"owner bit {owner_bit:#x} (SWMR violated)"
                )
            if state.staged & state.holders:
                raise AssertionError(
                    f"block {block}: staged copies {state.staged:#x} overlap "
                    f"holders {state.holders:#x}"
                )
            if state.staged & owner_bit:
                raise AssertionError(
                    f"block {block}: owner {state.owner} staged its own line"
                )
