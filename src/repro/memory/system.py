"""The multiprocessor system façade.

Bundles address space, per-node caches, directory, and protocol engine
behind the two-call interface the rest of the repo uses: feed it an access
stream, then take the sharing trace and statistics.  The module also owns
the epoch-replay entry point (:func:`replay_sharing_trace`): once a trace
is finalized, it can be pushed back through the directory at epoch
granularity -- optionally with per-event forwarding decisions -- which is
how the traffic simulator in :mod:`repro.forwarding` grounds its message
ledgers in protocol state rather than bare counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.machine import MachineSpec
from repro.memory.address import AddressSpace, HomePolicy
from repro.memory.cache import CacheConfig
from repro.memory.protocol import (
    CoherenceProtocol,
    EpochProtocol,
    EpochTransition,
    ProtocolStats,
)


@dataclass(frozen=True)
class SystemConfig:
    """Machine parameters (the reproduction's analogue of paper Table 4).

    The paper simulated 16 nodes, 64-byte lines, and 512 KB L2 caches.  Our
    workloads are scaled down (EXPERIMENTS.md), so the default cache is
    scaled proportionally to preserve the capacity-to-working-set ratio that
    shapes sharing traces; pass ``cache=CacheConfig()`` for paper-scale
    caches.
    """

    num_nodes: int = 16
    cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, associativity=4)
    )
    home_policy: HomePolicy = HomePolicy.FIRST_TOUCH
    #: MESI variant: read misses to uncached blocks are granted
    #: exclusive-clean, making read-then-write by a sole owner silent.
    #: Default False (MSI) -- the workload calibration in EXPERIMENTS.md
    #: assumes MSI, where every first write is a traced coherence store.
    use_exclusive_state: bool = False

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be positive, got {self.num_nodes}")


class MultiprocessorSystem:
    """N nodes, N caches, a directory, and an MSI protocol between them.

    Pass ``machine`` to build the whole system from one
    :class:`~repro.machine.MachineSpec`; the spec then rides along on every
    finalized trace.  ``config`` remains the memory-layer view (and wins if
    both are given, provided the node counts agree).
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        trace_name: str = "trace",
        machine: Optional[MachineSpec] = None,
        trace_sink=None,
    ):
        if config is None:
            config = machine.system_config() if machine is not None else SystemConfig()
        if machine is not None and machine.num_nodes != config.num_nodes:
            raise ValueError(
                f"machine spec is for {machine.num_nodes} nodes, "
                f"config for {config.num_nodes}"
            )
        self.config = config
        self.machine = machine
        self.trace_sink = trace_sink
        self.address_space = AddressSpace(
            num_nodes=config.num_nodes,
            line_size=config.cache.line_size,
            home_policy=config.home_policy,
        )
        builder = None
        if trace_sink is not None:
            # Stream the trace into the sink (typically a TraceWriter) as
            # epochs settle instead of materializing it; finalize_trace then
            # returns the event count, and the trace lives wherever the sink
            # put it.
            from repro.trace.builder import StreamingTraceBuilder

            builder = StreamingTraceBuilder(
                config.num_nodes, trace_sink, name=trace_name, machine=machine
            )
        self.protocol = CoherenceProtocol(
            num_nodes=config.num_nodes,
            cache_config=config.cache,
            address_space=self.address_space,
            trace_name=trace_name,
            use_exclusive_state=config.use_exclusive_state,
            machine=machine,
            builder=builder,
        )

    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    @property
    def stats(self) -> ProtocolStats:
        return self.protocol.stats

    def read(self, node: int, address: int) -> None:
        self.protocol.read(node, address)

    def write(self, node: int, address: int, pc: int) -> None:
        self.protocol.write(node, address, pc)

    def run(self, accesses: Iterable[Tuple[int, str, int, int]]) -> None:
        """Process a stream of ``(node, op, address, pc)`` references.

        ``op`` is ``"R"`` or ``"W"``.  The stream's order *is* the machine's
        global memory order (the scheduler in :mod:`repro.workloads` decides
        the interleaving).
        """
        read = self.protocol.read
        write = self.protocol.write
        for node, op, address, pc in accesses:
            if op == "R":
                read(node, address)
            elif op == "W":
                write(node, address, pc)
            else:
                raise ValueError(f"unknown op {op!r}; expected 'R' or 'W'")

    def finalize_trace(self):
        """Finish and return the sharing trace for everything run so far.

        With a ``trace_sink`` the events were streamed out as they settled,
        so this returns the total event count instead of a trace (matching
        :meth:`~repro.trace.builder.StreamingTraceBuilder.finalize`).
        """
        return self.protocol.finalize_trace()

    def replay_trace(
        self,
        trace,
        predictions: Optional[Sequence[int]] = None,
        check_invariants: bool = False,
    ) -> Tuple[EpochProtocol, List[EpochTransition]]:
        """Replay a finalized trace at epoch granularity on this machine size."""
        if trace.num_nodes != self.num_nodes:
            raise ValueError(
                f"trace is for {trace.num_nodes} nodes, system for {self.num_nodes}"
            )
        return replay_sharing_trace(
            trace, predictions=predictions, check_invariants=check_invariants
        )


def replay_sharing_trace(
    trace,
    predictions: Optional[Sequence[int]] = None,
    check_invariants: bool = False,
) -> Tuple[EpochProtocol, List[EpochTransition]]:
    """Replay a finalized sharing trace through the epoch-level directory.

    Args:
        trace: a :class:`~repro.trace.events.SharingTrace`.
        predictions: one forwarding bitmap per event (the nodes to push the
            written line to); ``None`` replays the pure invalidate baseline.
        check_invariants: assert SWMR and staging discipline after every
            event (slow; used by the property-test suite).

    Returns:
        The finished :class:`EpochProtocol` (with its replay stats and final
        block states) and the per-event :class:`EpochTransition` list.
    """
    if predictions is not None and len(predictions) != len(trace):
        raise ValueError(
            f"got {len(predictions)} predictions for {len(trace)} events"
        )
    protocol = EpochProtocol(trace.num_nodes)
    transitions: List[EpochTransition] = []
    for position in range(len(trace)):
        forward_to = int(predictions[position]) if predictions is not None else 0
        transitions.append(protocol.apply(trace[position], forward_to=forward_to))
        if check_invariants:
            protocol.check_invariants()
    return protocol, transitions
