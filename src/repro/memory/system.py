"""The multiprocessor system façade.

Bundles address space, per-node caches, directory, and protocol engine
behind the two-call interface the rest of the repo uses: feed it an access
stream, then take the sharing trace and statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

from repro.memory.address import AddressSpace, HomePolicy
from repro.memory.cache import CacheConfig
from repro.memory.protocol import CoherenceProtocol, ProtocolStats


@dataclass(frozen=True)
class SystemConfig:
    """Machine parameters (the reproduction's analogue of paper Table 4).

    The paper simulated 16 nodes, 64-byte lines, and 512 KB L2 caches.  Our
    workloads are scaled down (EXPERIMENTS.md), so the default cache is
    scaled proportionally to preserve the capacity-to-working-set ratio that
    shapes sharing traces; pass ``cache=CacheConfig()`` for paper-scale
    caches.
    """

    num_nodes: int = 16
    cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, associativity=4)
    )
    home_policy: HomePolicy = HomePolicy.FIRST_TOUCH
    #: MESI variant: read misses to uncached blocks are granted
    #: exclusive-clean, making read-then-write by a sole owner silent.
    #: Default False (MSI) -- the workload calibration in EXPERIMENTS.md
    #: assumes MSI, where every first write is a traced coherence store.
    use_exclusive_state: bool = False

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.num_nodes > 32:
            raise ValueError(f"num_nodes must be in [1, 32], got {self.num_nodes}")


class MultiprocessorSystem:
    """N nodes, N caches, a directory, and an MSI protocol between them."""

    def __init__(self, config: SystemConfig = SystemConfig(), trace_name: str = "trace"):
        self.config = config
        self.address_space = AddressSpace(
            num_nodes=config.num_nodes,
            line_size=config.cache.line_size,
            home_policy=config.home_policy,
        )
        self.protocol = CoherenceProtocol(
            num_nodes=config.num_nodes,
            cache_config=config.cache,
            address_space=self.address_space,
            trace_name=trace_name,
            use_exclusive_state=config.use_exclusive_state,
        )

    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    @property
    def stats(self) -> ProtocolStats:
        return self.protocol.stats

    def read(self, node: int, address: int) -> None:
        self.protocol.read(node, address)

    def write(self, node: int, address: int, pc: int) -> None:
        self.protocol.write(node, address, pc)

    def run(self, accesses: Iterable[Tuple[int, str, int, int]]) -> None:
        """Process a stream of ``(node, op, address, pc)`` references.

        ``op`` is ``"R"`` or ``"W"``.  The stream's order *is* the machine's
        global memory order (the scheduler in :mod:`repro.workloads` decides
        the interleaving).
        """
        read = self.protocol.read
        write = self.protocol.write
        for node, op, address, pc in accesses:
            if op == "R":
                read(node, address)
            elif op == "W":
                write(node, address, pc)
            else:
                raise ValueError(f"unknown op {op!r}; expected 'R' or 'W'")

    def finalize_trace(self):
        """Finish and return the sharing trace for everything run so far."""
        return self.protocol.finalize_trace()
