"""Distributed shared-memory substrate (stands in for the paper's RSIM).

A 16-node (configurable) system of per-node coherence caches kept coherent
by a full-map directory running an MSI invalidation protocol.  Feeding it a
stream of per-node memory references produces exactly what the predictor
study needs: the sharing-event trace (who wrote, under which pc, homed
where, and who read before the next write) plus protocol statistics.

Timing is deliberately not modelled: the paper argues (Section 5.1) that
its metrics are timing-independent, and ours are computed the same way.
"""

from repro.memory.address import AddressSpace, HomePolicy
from repro.memory.cache import CacheConfig, SetAssociativeCache
from repro.memory.directory import Directory, DirectoryEntry, DirState
from repro.memory.system import MultiprocessorSystem, SystemConfig

__all__ = [
    "AddressSpace",
    "HomePolicy",
    "CacheConfig",
    "SetAssociativeCache",
    "Directory",
    "DirectoryEntry",
    "DirState",
    "MultiprocessorSystem",
    "SystemConfig",
]
