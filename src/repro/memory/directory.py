"""Full-map directory state (DiriNB-style, one presence bit per node).

Each block that has ever been referenced has a :class:`DirectoryEntry`
recording protocol state (uncached / shared / exclusive), the owner, and the
sharer bitmap -- plus the *epoch bookkeeping* the prediction study needs:
which event opened the block's current write epoch and which nodes have
truly read during it (the paper's access-bit mechanism, Section 3.4, which
lets the directory distinguish true readers from forwarding pollution).

Eviction of a reader's cached copy removes its presence bit but *not* its
epoch-reader bit: it did read the value, which is what the predictors must
learn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.util.bitmaps import iter_set_bits, popcount


class DirState(Enum):
    """Protocol state of a block at its home directory."""

    UNCACHED = "uncached"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class DirectoryEntry:
    """Directory record for one block."""

    block: int
    home: int
    state: DirState = DirState.UNCACHED
    owner: Optional[int] = None
    sharers: int = 0  # presence bitmap of caches holding a copy

    # Epoch bookkeeping for sharing traces.
    epoch_event: Optional[int] = None  # index of the event that opened the epoch
    epoch_writer: Optional[int] = None
    epoch_readers: int = 0  # access-bit bitmap of true readers this epoch

    def add_sharer(self, node: int) -> None:
        self.sharers |= 1 << node

    def remove_sharer(self, node: int) -> None:
        self.sharers &= ~(1 << node)

    def has_sharer(self, node: int) -> bool:
        return bool(self.sharers & (1 << node))

    @property
    def num_sharers(self) -> int:
        """How many caches hold a copy (directory pressure metric)."""
        return popcount(self.sharers)

    def sharer_nodes(self) -> List[int]:
        """Node ids holding a copy, in increasing order."""
        return list(iter_set_bits(self.sharers))

    def epoch_reader_nodes(self) -> List[int]:
        """True readers of the current epoch, in increasing order."""
        return list(iter_set_bits(self.epoch_readers))


@dataclass
class Directory:
    """The machine's directories, viewed as one table keyed by block.

    Physically each entry lives at its home node; since the study never
    models network timing, a single map with per-entry ``home`` fields is an
    exact equivalent (the same abstraction the paper applies to predictors
    in Section 3.1).
    """

    entries: Dict[int, DirectoryEntry] = field(default_factory=dict)

    def entry(self, block: int, home: int) -> DirectoryEntry:
        """Get or create the entry for a block (home fixed at creation)."""
        existing = self.entries.get(block)
        if existing is None:
            existing = DirectoryEntry(block=block, home=home)
            self.entries[block] = existing
        return existing

    def get(self, block: int) -> Optional[DirectoryEntry]:
        return self.entries.get(block)

    def __len__(self) -> int:
        return len(self.entries)
