"""Set-associative LRU caches.

One cache per node at the coherence point (the paper's L2).  The cache
tracks presence and MSI state per resident block; everything else (sharer
sets, epoch bookkeeping) lives in the directory.  Lines are identified by
block number, so the cache is geometry-only: ``sets x ways`` of block slots
with true-LRU replacement via per-set ordered dicts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Coherence states for resident lines.  INVALID is represented by absence;
#: EXCLUSIVE (clean, sole copy) is used only when the system runs the MESI
#: protocol variant.
SHARED = 1
MODIFIED = 2
EXCLUSIVE = 3


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one node's coherence cache.

    The paper's full-scale configuration is 512 KB, 4-way, 64-byte lines;
    traces in this repo default to a proportionally scaled-down cache (see
    EXPERIMENTS.md) so that scaled-down workloads keep the same
    capacity-miss behaviour.
    """

    size_bytes: int = 512 * 1024
    associativity: int = 4
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ValueError(f"line_size must be a power of two, got {self.line_size}")
        if self.associativity < 1:
            raise ValueError(f"associativity must be >= 1, got {self.associativity}")
        if self.size_bytes % (self.line_size * self.associativity):
            raise ValueError(
                "size_bytes must be a multiple of line_size * associativity "
                f"({self.size_bytes} % {self.line_size * self.associativity})"
            )
        num_sets = self.size_bytes // (self.line_size * self.associativity)
        if num_sets & (num_sets - 1):
            raise ValueError(f"number of sets must be a power of two, got {num_sets}")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_size * self.associativity)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size


class SetAssociativeCache:
    """True-LRU set-associative cache over block numbers."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._set_mask = config.num_sets - 1
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(config.num_sets)]

    def _set_of(self, block: int) -> OrderedDict:
        return self._sets[block & self._set_mask]

    def get_state(self, block: int) -> Optional[int]:
        """The block's MSI state, or ``None`` when not resident. No LRU effect."""
        return self._set_of(block).get(block)

    def touch(self, block: int) -> None:
        """Record a use of a resident block (moves it to MRU)."""
        cache_set = self._set_of(block)
        cache_set.move_to_end(block)

    def set_state(self, block: int, state: int) -> None:
        """Change the state of a resident block (e.g. M -> S downgrade)."""
        cache_set = self._set_of(block)
        if block not in cache_set:
            raise KeyError(f"block {block} is not resident")
        cache_set[block] = state

    def insert(self, block: int, state: int) -> Optional[Tuple[int, int]]:
        """Bring a block in with the given state, evicting LRU if needed.

        Returns the evicted ``(block, state)`` pair, or ``None`` when no
        eviction was necessary.  Inserting an already-resident block just
        updates its state and recency.
        """
        cache_set = self._set_of(block)
        if block in cache_set:
            cache_set[block] = state
            cache_set.move_to_end(block)
            return None
        victim = None
        if len(cache_set) >= self.config.associativity:
            victim = cache_set.popitem(last=False)
        cache_set[block] = state
        return victim

    def invalidate(self, block: int) -> Optional[int]:
        """Drop a block; returns its state, or ``None`` if absent."""
        return self._set_of(block).pop(block, None)

    def resident_blocks(self) -> List[int]:
        """All resident block numbers (for invariant checks in tests)."""
        blocks: List[int] = []
        for cache_set in self._sets:
            blocks.extend(cache_set.keys())
        return blocks

    def __len__(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)
