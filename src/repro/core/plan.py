"""The sweep planner: share every pass a scheme batch can legally share.

A design-space sweep evaluates hundreds of schemes that differ only along
one axis at a time, so most of the per-scheme work is redundant:

* every scheme with the same :class:`IndexSpec` (including its pc/addr
  truncation -- truncation is part of the spec) reads a byte-identical key
  stream, so :func:`repro.core.vectorized.compute_keys` needs to run once
  per *(trace, index group)*, not once per scheme;
* every bitmap-family scheme sharing ``(IndexSpec, update mode)`` folds the
  same sorted feedback stream, so the sort + ``searchsorted`` + history
  gather (:class:`~repro.core.vectorized._BitmapPass`) runs once per batch
  at the batch's maximum window, and each scheme contributes only its cheap
  per-depth reduction.

:class:`SweepPlan` makes that sharing explicit and deterministic: it groups
a scheme list by ``IndexSpec`` (first-appearance order), sub-groups each
index group by prediction-function family (``bitmap`` / ``pas`` /
``sequential``), and records each scheme's original position so results --
and the per-scheme ``on_result`` checkpoint callbacks that sweep journaling
depends on -- are always reported against the caller's order.

:class:`KeyCache` holds the computed key streams, keyed by
``(trace fingerprint, IndexSpec)``.  Fingerprint keying (content hash, not
object identity) means equal traces share entries across batches within a
cache's lifetime -- e.g. across every chunk a parallel worker evaluates.
Hits and misses surface as ``plan.key_cache.hits`` / ``plan.key_cache.misses``
telemetry, which is also the acceptance probe for the planner's central
guarantee: exactly one key computation per (trace, index group).

Grouping is pure scheduling: :func:`evaluate_plan` is bit-identical to
evaluating each scheme independently (frozen against the golden fixtures on
every backend), so planner changes can never move a published number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.indexing import IndexSpec
from repro.core.kernel_backends import kernel_evaluate
from repro.core.schemes import Scheme
from repro.core.update import UpdateMode
from repro.core.vectorized import (
    _BITMAP_FUNCTIONS,
    _bitmap_window,
    _BitmapPass,
    _merge_quad,
    _predict_kernel,
    _reduce_bitmap,
    _score,
    compute_keys,
)
from repro.metrics.confusion import ConfusionCounts
from repro.telemetry import get_telemetry
from repro.trace.events import SharingTrace
from repro.trace.shm import trace_fingerprint

#: family names, in deterministic batch order within an index group
FAMILY_BITMAP = "bitmap"
FAMILY_PAS = "pas"
FAMILY_SEQUENTIAL = "sequential"


def scheme_family(scheme: Scheme) -> str:
    """The shared-pass family a scheme's prediction function belongs to."""
    if scheme.function in _BITMAP_FUNCTIONS:
        return FAMILY_BITMAP
    if scheme.function == "pas":
        return FAMILY_PAS
    return FAMILY_SEQUENTIAL


@dataclass(frozen=True)
class PlanMember:
    """One scheme and its position in the caller's original batch order."""

    position: int
    scheme: Scheme


@dataclass(frozen=True)
class FamilyBatch:
    """Schemes of one family within one index group.

    A bitmap batch is scored with one shared :class:`_BitmapPass` per update
    mode present; pas/sequential batches still run per scheme but share the
    group's key stream.
    """

    family: str
    members: Tuple[PlanMember, ...]

    def __len__(self) -> int:
        return len(self.members)


@dataclass(frozen=True)
class IndexGroup:
    """All schemes sharing one :class:`IndexSpec` (hence one key stream)."""

    spec: IndexSpec
    batches: Tuple[FamilyBatch, ...]

    def __len__(self) -> int:
        return sum(len(batch) for batch in self.batches)


class SweepPlan:
    """A deterministic shared-pass execution plan for a scheme batch.

    Construction is pure bookkeeping (no trace access); the same scheme
    list always yields the same plan.  Iterate ``plan.groups`` for the
    grouped view, or :meth:`order` / :meth:`batch_boundaries` for the flat
    plan-ordered permutation the parallel scheduler chunks over.
    """

    def __init__(self, schemes: Sequence[Scheme]) -> None:
        self.schemes: List[Scheme] = list(schemes)
        by_spec: Dict[IndexSpec, Dict[str, List[PlanMember]]] = {}
        for position, scheme in enumerate(self.schemes):
            families = by_spec.setdefault(scheme.index, {})
            families.setdefault(scheme_family(scheme), []).append(
                PlanMember(position, scheme)
            )
        self.groups: Tuple[IndexGroup, ...] = tuple(
            IndexGroup(
                spec=spec,
                batches=tuple(
                    FamilyBatch(family, tuple(members))
                    for family, members in families.items()
                ),
            )
            for spec, families in by_spec.items()
        )

    @property
    def num_schemes(self) -> int:
        return len(self.schemes)

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def order(self) -> List[int]:
        """Original positions in plan order (a permutation of ``range(n)``)."""
        return [
            member.position
            for group in self.groups
            for batch in group.batches
            for member in batch.members
        ]

    def batch_boundaries(self) -> List[int]:
        """Cumulative batch end offsets in plan order; last == num_schemes.

        Chunks cut strictly inside these boundaries contain schemes of one
        ``(IndexSpec, family)``, so a worker evaluating the chunk shares its
        key stream and bitmap passes at full efficiency.

        Runs of *adjacent singleton batches* are merged into one segment: a
        one-scheme batch has no pass sharing to protect, so clamping chunks
        to its boundary (as the parallel scheduler does) would only shrink
        every chunk of a many-unique-index sweep to a single scheme.  A
        chunk spanning merged singletons evaluates each scheme standalone,
        exactly as the un-merged plan would have -- grouping remains pure
        scheduling, never semantics.
        """
        raw: List[int] = []
        total = 0
        for group in self.groups:
            for batch in group.batches:
                total += len(batch)
                raw.append(total)
        boundaries: List[int] = []
        previous = 0
        singleton_run_end: Optional[int] = None
        for boundary in raw:
            if boundary - previous == 1:
                singleton_run_end = boundary
            else:
                if singleton_run_end is not None:
                    boundaries.append(singleton_run_end)
                    singleton_run_end = None
                boundaries.append(boundary)
            previous = boundary
        if singleton_run_end is not None:
            boundaries.append(singleton_run_end)
        return boundaries

    def record_telemetry(self, telemetry) -> None:
        """Surface the plan's shape under ``plan.*`` (batch-level, once)."""
        telemetry.count("plan.batches")
        telemetry.count("plan.schemes", self.num_schemes)
        telemetry.count("plan.index_groups", self.num_groups)
        if self.groups:
            telemetry.gauge(
                "plan.group_size", max(len(group) for group in self.groups)
            )


class KeyCache:
    """Fingerprint-keyed cache of per-(trace, IndexSpec) key streams.

    The fingerprint (a content hash of the trace arrays) is memoized per
    trace object, so repeated lookups hash each trace once per cache
    lifetime, not once per scheme.  Every miss is exactly one
    :func:`compute_keys` call; the planner's one-computation-per-group
    guarantee is therefore directly observable from the
    ``plan.key_cache.*`` counters.
    """

    def __init__(self) -> None:
        self._streams: Dict[Tuple[str, IndexSpec], np.ndarray] = {}
        self._fingerprints: Dict[int, str] = {}
        # pin fingerprinted traces so id() reuse cannot alias the memo
        self._pinned: List[SharingTrace] = []

    def _fingerprint(self, trace: SharingTrace) -> str:
        fingerprint = self._fingerprints.get(id(trace))
        if fingerprint is None:
            fingerprint = trace_fingerprint(trace)
            self._fingerprints[id(trace)] = fingerprint
            self._pinned.append(trace)
        return fingerprint

    def key_stream(self, trace: SharingTrace, spec: IndexSpec) -> np.ndarray:
        """The (cached) :func:`compute_keys` stream for ``(trace, spec)``."""
        telemetry = get_telemetry()
        cache_key = (self._fingerprint(trace), spec)
        stream = self._streams.get(cache_key)
        if stream is None:
            stream = compute_keys(spec, trace)
            self._streams[cache_key] = stream
            telemetry.count("plan.key_cache.misses")
        else:
            telemetry.count("plan.key_cache.hits")
        return stream

    def clear(self) -> None:
        self._streams.clear()
        self._fingerprints.clear()
        self._pinned.clear()


def _predict_batch(
    batch: FamilyBatch,
    spec: IndexSpec,
    trace: SharingTrace,
    key_cache: KeyCache,
    exclude_writer: bool,
) -> List[np.ndarray]:
    """Prediction arrays for every member of one batch on one trace.

    This is where the sharing happens: one key stream for the whole batch,
    and -- for bitmap batches -- one :class:`_BitmapPass` per update mode
    present, gathered at the batch's maximum window so every member reduces
    over its own prefix of the same gather.  ``plan.trace_passes`` counts
    the full trace passes actually made (one per bitmap (mode) sub-batch,
    one per pas/sequential scheme); the saving relative to
    ``len(batch) * len(traces)`` is the planner's whole point.
    """
    telemetry = get_telemetry()
    if len(trace) == 0:
        return [trace.layout.zeros(0) for _ in batch.members]
    keys = key_cache.key_stream(trace, spec)
    predictions: List[Optional[np.ndarray]] = [None] * len(batch.members)

    if batch.family == FAMILY_BITMAP:
        by_mode: Dict[UpdateMode, List[int]] = {}
        for offset, member in enumerate(batch.members):
            by_mode.setdefault(member.scheme.update, []).append(offset)
        for mode, offsets in by_mode.items():
            window = max(
                _bitmap_window(batch.members[offset].scheme) for offset in offsets
            )
            shared = _BitmapPass(trace, keys, mode, window)
            telemetry.count("plan.trace_passes")
            for offset in offsets:
                scheme = batch.members[offset].scheme
                predictions[offset] = _reduce_bitmap(
                    scheme.function,
                    _bitmap_window(scheme),
                    shared,
                    trace.num_nodes,
                )
    else:
        for offset, member in enumerate(batch.members):
            predictions[offset] = _predict_kernel(member.scheme, trace, keys)
            telemetry.count("plan.trace_passes")

    if exclude_writer:
        writer_bit = trace.layout.writer_bits(trace.writer)
        predictions = [array & ~writer_bit for array in predictions]
    return predictions  # type: ignore[return-value]


def evaluate_plan(
    plan: SweepPlan,
    traces: Sequence[SharingTrace],
    *,
    exclude_writer: bool = True,
    key_cache: Optional[KeyCache] = None,
    on_result: Optional[Callable[[int, List[ConfusionCounts]], None]] = None,
) -> List[List[ConfusionCounts]]:
    """Execute a plan: per-trace confusion counts for every scheme.

    Returns the same shape, in the same caller order, as
    ``EvaluationEngine.evaluate_batch`` -- one list per scheme, one
    :class:`ConfusionCounts` per trace -- and fires ``on_result`` once per
    scheme as its batch finishes the suite (batch-grouped, so possibly out
    of the caller's order; journaling already handles that).  Pass a
    long-lived ``key_cache`` to share key streams across calls (the
    parallel workers do); by default each call gets a private cache.
    """
    if key_cache is None:
        key_cache = KeyCache()
    telemetry = get_telemetry()
    results: List[Optional[List[ConfusionCounts]]] = [None] * plan.num_schemes
    for group in plan.groups:
        for batch in group.batches:
            per_member: List[List[ConfusionCounts]] = [
                [] for _ in range(len(batch.members))
            ]
            for trace in traces:
                if batch.family == FAMILY_BITMAP:
                    arrays = _predict_batch(
                        batch, group.spec, trace, key_cache, exclude_writer
                    )
                    for offset, predictions in enumerate(arrays):
                        counts = ConfusionCounts()
                        if len(trace):
                            _score(predictions, trace, counts)
                        per_member[offset].append(counts)
                    continue
                # Per-event families: the registry's fused path predicts and
                # popcount-scores inside the active kernel backend, sharing
                # the group's cached key stream.  Still one trace pass per
                # scheme (counter state can't be shared across schemes).
                keys = key_cache.key_stream(trace, group.spec) if len(trace) else None
                for offset, member in enumerate(batch.members):
                    counts = ConfusionCounts()
                    if len(trace):
                        _merge_quad(
                            counts,
                            kernel_evaluate(member.scheme, trace, keys, exclude_writer),
                        )
                        telemetry.count("plan.trace_passes")
                    per_member[offset].append(counts)
            for member, per_trace in zip(batch.members, per_member):
                results[member.position] = per_trace
                if on_result is not None:
                    on_result(member.position, per_trace)
    assert all(entry is not None for entry in results)
    return results  # type: ignore[return-value]
