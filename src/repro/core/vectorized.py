"""Fast trace evaluation: numpy passes instead of a per-event interpreter.

The design-space sweeps of paper Section 5.4 evaluate thousands of schemes
over every benchmark trace, so the per-scheme cost must be a handful of
vectorized passes.  The key observation is that for bitmap-history functions
(last/union/intersection/overlap-last) the history an entry holds at event
*i* is simply the last ``depth`` feedback values delivered to ``key[i]``
before the prediction -- and every update mode reduces to a different
*(delivery time, feedback value)* labelling of the same event stream:

==========  =======================  ==================  ==================
mode        feedback source          value               delivery time
==========  =======================  ==================  ==================
DIRECT      events with ``has_inval``  ``inval[j]``        ``j`` (inclusive)
FORWARDED   events with ``close<E``    ``truth[j]``        ``close[j]`` (inclusive)
ORDERED     all events                 ``truth[j]``        ``j`` (exclusive)
==========  =======================  ==================  ==================

"Inclusive" means a feedback delivered *at* event *i* is visible to event
*i*'s own prediction (direct update happens at the consulting event;
forwarded feedback is processed by the directory before the closing event
predicts); "exclusive" means it becomes visible only to later predictions.
Delivery times are unique within a mode (an event closes at most one epoch),
so one ``searchsorted`` over a composite ``(key, time)`` ordering recovers
each prediction's history window exactly.

PAs entries carry counter state that depends on the full feedback sequence,
not a window, so they take an optimized sequential path instead
(:func:`_evaluate_pas`); it shares the same delivery-time semantics.

``evaluate_scheme_fast`` is property-tested against the reference evaluator
in ``tests/core/test_vectorized_equivalence.py``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.schemes import Scheme
from repro.core.update import UpdateMode
from repro.metrics.confusion import ConfusionCounts
from repro.trace.events import SharingTrace
from repro.util.bitmaps import POPCOUNT16, bitmap_mask

_BITMAP_FUNCTIONS = ("last", "union", "inter", "overlap")


def predict_scheme_fast(
    scheme: Scheme, trace: SharingTrace, exclude_writer: bool = True
) -> np.ndarray:
    """The per-event prediction bitmaps ``scheme`` emits over ``trace``.

    A ``uint32`` array, one forwarding bitmap per event -- the fast-path
    counterpart of :func:`repro.core.evaluator.predict_scheme`, and the
    array :func:`repro.forwarding.replay_traffic` consumes.
    """
    if len(trace) == 0:
        return np.zeros(0, dtype=np.uint32)
    if scheme.function in _BITMAP_FUNCTIONS:
        predictions = _predict_bitmap_scheme(scheme, trace)
    elif scheme.function == "pas":
        predictions = _evaluate_pas(scheme, trace)
    else:
        # Generic sequential path: any PredictionFunction (e.g. the
        # confidence-gated extensions) evaluates correctly, just without
        # the vectorized speedup.
        predictions = _evaluate_sequential(scheme, trace)

    if exclude_writer:
        writer_bit = (np.uint32(1) << trace.writer.astype(np.uint32)).astype(np.uint32)
        predictions = predictions & ~writer_bit
    return predictions


def evaluate_scheme_fast(
    scheme: Scheme,
    trace: SharingTrace,
    exclude_writer: bool = True,
    counts: Optional[ConfusionCounts] = None,
) -> ConfusionCounts:
    """Drop-in fast replacement for :func:`repro.core.evaluator.evaluate_scheme`."""
    if counts is None:
        counts = ConfusionCounts()
    if len(trace) == 0:
        return counts
    predictions = predict_scheme_fast(scheme, trace, exclude_writer=exclude_writer)
    _score(predictions, trace, counts)
    return counts


# ----------------------------------------------------------------------
# Bitmap-history schemes
# ----------------------------------------------------------------------


def _compute_keys(scheme: Scheme, trace: SharingTrace) -> np.ndarray:
    """Vectorized mirror of :meth:`IndexSpec.key` over the whole trace."""
    spec = scheme.index
    num_nodes = trace.num_nodes
    node_bits = spec.node_bits(num_nodes)
    node_mask = (1 << node_bits) - 1
    keys = np.zeros(len(trace), dtype=np.int64)
    if spec.use_pid:
        keys = (keys << node_bits) | (trace.writer & node_mask)
    if spec.pc_bits:
        keys = (keys << spec.pc_bits) | (trace.pc & ((1 << spec.pc_bits) - 1))
    if spec.use_dir:
        keys = (keys << node_bits) | (trace.home & node_mask)
    if spec.addr_bits:
        keys = (keys << spec.addr_bits) | (trace.block & ((1 << spec.addr_bits) - 1))
    return keys


def _feedback_stream(
    scheme: Scheme, trace: SharingTrace, keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, str]:
    """Return (feedback keys, values, delivery times, searchsorted side)."""
    length = len(trace)
    mode = scheme.update
    if mode is UpdateMode.DIRECT:
        selector = trace.has_inval
        return keys[selector], trace.inval[selector], np.nonzero(selector)[0], "right"
    if mode is UpdateMode.FORWARDED:
        selector = trace.close < length
        return keys[selector], trace.truth[selector], trace.close[selector], "right"
    if mode is UpdateMode.ORDERED:
        return keys, trace.truth, np.arange(length, dtype=np.int64), "left"
    raise AssertionError(f"unhandled update mode {mode}")  # pragma: no cover


def _predict_bitmap_scheme(scheme: Scheme, trace: SharingTrace) -> np.ndarray:
    length = len(trace)
    keys = _compute_keys(scheme, trace)
    fb_keys, fb_values, fb_times, side = _feedback_stream(scheme, trace, keys)

    # Composite (key, time) ordering.  time <= length, so (length + 1) keeps
    # keys in distinct, non-overlapping ranges.
    stride = np.int64(length + 1)
    fb_composite = fb_keys * stride + fb_times
    order = np.argsort(fb_composite, kind="stable")
    fb_composite = fb_composite[order]
    fb_values = fb_values[order].astype(np.uint32)

    use_composite = keys * stride + np.arange(length, dtype=np.int64)
    positions = np.searchsorted(fb_composite, use_composite, side=side)
    group_starts = np.searchsorted(fb_composite, keys * stride, side="left")
    available = positions - group_starts

    # Overlap-last keeps two bitmaps regardless of nominal depth.
    window = 2 if scheme.function == "overlap" else scheme.depth
    gathered = np.zeros((window, length), dtype=np.uint32)
    valid_to = np.minimum(available, window)
    for slot in range(1, window + 1):
        indices = positions - slot
        in_window = indices >= group_starts
        gathered[slot - 1, in_window] = fb_values[indices[in_window]]

    full_mask = np.uint32(bitmap_mask(trace.num_nodes))
    if scheme.function in ("union", "last"):
        predictions = np.zeros(length, dtype=np.uint32)
        for slot in range(window):
            predictions |= gathered[slot]
    elif scheme.function == "inter":
        predictions = np.full(length, full_mask, dtype=np.uint32)
        for slot in range(window):
            active = valid_to > slot
            predictions[active] &= gathered[slot, active]
        predictions[available == 0] = 0
    else:  # overlap-last
        newest = gathered[0]
        previous = gathered[1]
        overlaps = (newest & previous) != 0
        predictions = np.where(
            available >= 2,
            np.where(overlaps, newest, np.uint32(0)),
            newest,  # 0 or 1 bitmaps stored: predict what is there (0 if none)
        ).astype(np.uint32)
    return predictions


# ----------------------------------------------------------------------
# PAs schemes (sequential, but with a tight flat-state inner loop)
# ----------------------------------------------------------------------


def _evaluate_pas(scheme: Scheme, trace: SharingTrace) -> np.ndarray:
    """Sequential PAs evaluation producing the per-event prediction array.

    Entry state is kept as flat Python lists (one history int per node, one
    byte per counter) inside a dict keyed by the scheme index; the inner
    loops bind everything to locals because this path is the cost ceiling of
    the whole design-space sweep.
    """
    length = len(trace)
    num_nodes = trace.num_nodes
    depth = scheme.depth
    mask = (1 << depth) - 1
    counters_per_entry = num_nodes << depth
    mode = scheme.update

    keys = _compute_keys(scheme, trace).tolist()
    truth = trace.truth.tolist()
    inval = trace.inval.tolist()
    has_inval = trace.has_inval.tolist()
    blocks = trace.block.tolist()

    # table[key] = [histories list, counters bytearray]
    table: dict = {}
    pending_key_by_block: dict = {}
    predictions = np.zeros(length, dtype=np.uint32)
    node_range = range(num_nodes)

    def get_entry(key: int) -> list:
        entry = table.get(key)
        if entry is None:
            entry = [[0] * num_nodes, bytearray([1]) * counters_per_entry]
            table[key] = entry
        return entry

    def apply_feedback(entry: list, feedback: int) -> None:
        histories, counters = entry
        for node in node_range:
            history = histories[node]
            slot = (node << depth) | history
            if (feedback >> node) & 1:
                if counters[slot] < 3:
                    counters[slot] += 1
                histories[node] = ((history << 1) | 1) & mask
            else:
                if counters[slot] > 0:
                    counters[slot] -= 1
                histories[node] = (history << 1) & mask

    direct = mode is UpdateMode.DIRECT
    forwarded = mode is UpdateMode.FORWARDED
    ordered = mode is UpdateMode.ORDERED

    for position in range(length):
        key = keys[position]
        if direct:
            if has_inval[position]:
                apply_feedback(get_entry(key), inval[position])
        elif forwarded:
            block = blocks[position]
            if has_inval[position]:
                apply_feedback(get_entry(pending_key_by_block[block]), inval[position])
            pending_key_by_block[block] = key

        entry = get_entry(key)
        histories, counters = entry
        prediction = 0
        for node in node_range:
            if counters[(node << depth) | histories[node]] >= 2:
                prediction |= 1 << node
        predictions[position] = prediction

        if ordered:
            apply_feedback(entry, truth[position])

    return predictions


# ----------------------------------------------------------------------
# Generic sequential path (arbitrary prediction functions)
# ----------------------------------------------------------------------


def _evaluate_sequential(scheme: Scheme, trace: SharingTrace) -> np.ndarray:
    """Per-event evaluation with a real function object.

    Mirrors the reference evaluator's update timing exactly, but produces
    the raw prediction array so scoring/masking stay shared with the fast
    paths (equivalence is covered by the same property tests).
    """
    length = len(trace)
    function = scheme.make_function(trace.num_nodes)
    keys = _compute_keys(scheme, trace).tolist()
    truth = trace.truth.tolist()
    inval = trace.inval.tolist()
    has_inval = trace.has_inval.tolist()
    blocks = trace.block.tolist()
    mode = scheme.update

    table: dict = {}
    pending_key_by_block: dict = {}
    predictions = np.zeros(length, dtype=np.uint32)

    def entry_for(key: int):
        entry = table.get(key)
        if entry is None:
            entry = function.new_entry()
            table[key] = entry
        return entry

    for position in range(length):
        key = keys[position]
        if mode is UpdateMode.DIRECT:
            if has_inval[position]:
                function.update(entry_for(key), inval[position])
        elif mode is UpdateMode.FORWARDED:
            block = blocks[position]
            if has_inval[position]:
                function.update(
                    entry_for(pending_key_by_block[block]), inval[position]
                )
            pending_key_by_block[block] = key
        entry = entry_for(key)
        predictions[position] = function.predict(entry)
        if mode is UpdateMode.ORDERED:
            function.update(entry, truth[position])
    return predictions


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------


def _popcount_array(values: np.ndarray) -> np.ndarray:
    """Population count of a uint32 array via the 16-bit lookup table."""
    low = POPCOUNT16[values & np.uint32(0xFFFF)]
    high = POPCOUNT16[values >> np.uint32(16)]
    return low.astype(np.int64) + high.astype(np.int64)


def _score(predictions: np.ndarray, trace: SharingTrace, counts: ConfusionCounts) -> None:
    full_mask = np.uint32(bitmap_mask(trace.num_nodes))
    truth = trace.truth
    true_positive = int(_popcount_array(predictions & truth).sum())
    false_positive = int(_popcount_array(predictions & ~truth & full_mask).sum())
    false_negative = int(_popcount_array(~predictions & truth & full_mask).sum())
    total = len(trace) * trace.num_nodes
    counts.true_positive += true_positive
    counts.false_positive += false_positive
    counts.false_negative += false_negative
    counts.true_negative += total - true_positive - false_positive - false_negative


def evaluate_scheme_fast_multi(
    scheme: Scheme, traces, exclude_writer: bool = True
) -> ConfusionCounts:
    """Evaluate one scheme across several traces (fresh state per trace)."""
    counts = ConfusionCounts()
    for trace in traces:
        evaluate_scheme_fast(scheme, trace, exclude_writer=exclude_writer, counts=counts)
    return counts
