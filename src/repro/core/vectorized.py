"""Fast trace evaluation: numpy passes instead of a per-event interpreter.

The design-space sweeps of paper Section 5.4 evaluate thousands of schemes
over every benchmark trace, so the per-scheme cost must be a handful of
vectorized passes.  The key observation is that for bitmap-history functions
(last/union/intersection/overlap-last) the history an entry holds at event
*i* is simply the last ``depth`` feedback values delivered to ``key[i]``
before the prediction -- and every update mode reduces to a different
*(delivery time, feedback value)* labelling of the same event stream:

==========  =======================  ==================  ==================
mode        feedback source          value               delivery time
==========  =======================  ==================  ==================
DIRECT      events with ``has_inval``  ``inval[j]``        ``j`` (inclusive)
FORWARDED   events with ``close<E``    ``truth[j]``        ``close[j]`` (inclusive)
ORDERED     all events                 ``truth[j]``        ``j`` (exclusive)
==========  =======================  ==================  ==================

"Inclusive" means a feedback delivered *at* event *i* is visible to event
*i*'s own prediction (direct update happens at the consulting event;
forwarded feedback is processed by the directory before the closing event
predicts); "exclusive" means it becomes visible only to later predictions.
Delivery times are unique within a mode (an event closes at most one epoch),
so one ``searchsorted`` over a composite ``(key, time)`` ordering recovers
each prediction's history window exactly.

The expensive parts of a sweep are *shared*, not per-scheme, and the module
is factored accordingly so :mod:`repro.core.plan` can reuse them:

* :func:`compute_keys` depends only on the :class:`IndexSpec`, so every
  scheme in an index group reads the same key stream;
* :class:`_BitmapPass` -- the feedback sort + ``searchsorted`` + history
  gather -- depends only on ``(keys, update mode, max window)``, so all
  depths and functions of a bitmap batch reduce over one pass via
  :func:`_reduce_bitmap`.

PAs entries carry counter state that depends on the full feedback sequence,
not a window, so they (and arbitrary
:class:`~repro.core.functions.PredictionFunction` objects -- the
confidence-gated extensions) run the per-event loop through the kernel
backend registry (:mod:`repro.core.kernel_backends`): the compiled
``native`` backend when one is available, else the pure-Python
:class:`~repro.core.kernel.PredictorKernel` -- bit-identically, per the
registry contract.  Either way the update-timing state machine is shared
with the reference evaluator by construction.

``evaluate_scheme_fast`` is property-tested against the reference evaluator
in ``tests/core/test_vectorized_equivalence.py``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.indexing import IndexSpec
from repro.core.kernel_backends import kernel_evaluate, kernel_predict, score_predictions
from repro.core.schemes import Scheme
from repro.core.update import UpdateMode
from repro.metrics.confusion import ConfusionCounts
from repro.trace.events import SharingTrace
from repro.util.bitmaps import POPCOUNT16

_BITMAP_FUNCTIONS = ("last", "union", "inter", "overlap")


def predict_scheme_fast(
    scheme: Scheme,
    trace: SharingTrace,
    exclude_writer: bool = True,
    keys: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The per-event prediction bitmaps ``scheme`` emits over ``trace``.

    One forwarding bitmap per event, in the trace's
    :class:`~repro.util.bitmaps.BitmapLayout` representation (``uint32``
    for paper-sized machines) -- the fast-path counterpart of
    :func:`repro.core.evaluator.predict_scheme`, and the array
    :func:`repro.forwarding.replay_traffic` consumes.

    ``keys`` optionally supplies a precomputed :func:`compute_keys` stream
    for ``scheme.index`` (the sweep planner's key cache); omitted, the keys
    are computed here.  Passing cached keys is bit-identical by definition
    -- the same function produced them.
    """
    if len(trace) == 0:
        return trace.layout.zeros(0)
    if keys is None:
        keys = compute_keys(scheme.index, trace)
    if scheme.function in _BITMAP_FUNCTIONS:
        window = _bitmap_window(scheme)
        shared = _BitmapPass(trace, keys, scheme.update, window)
        predictions = _reduce_bitmap(scheme.function, window, shared, trace.num_nodes)
    else:
        # Per-event families (PAs counters, confidence-gated extensions):
        # the kernel backend registry picks the compiled loop when one is
        # available, the pure-Python PredictorKernel otherwise.
        predictions = _predict_kernel(scheme, trace, keys)

    if exclude_writer:
        predictions = predictions & ~trace.layout.writer_bits(trace.writer)
    return predictions


def evaluate_scheme_fast(
    scheme: Scheme,
    trace: SharingTrace,
    exclude_writer: bool = True,
    counts: Optional[ConfusionCounts] = None,
) -> ConfusionCounts:
    """Drop-in fast replacement for :func:`repro.core.evaluator.evaluate_scheme`."""
    if counts is None:
        counts = ConfusionCounts()
    if len(trace) == 0:
        return counts
    if scheme.function in _BITMAP_FUNCTIONS:
        predictions = predict_scheme_fast(scheme, trace, exclude_writer=exclude_writer)
        _score(predictions, trace, counts)
    else:
        # Per-event families go through the registry's fused path, so a
        # native backend predicts *and* scores without materializing the
        # prediction column in Python (popcount confusion counting in C).
        keys = compute_keys(scheme.index, trace)
        _merge_quad(counts, kernel_evaluate(scheme, trace, keys, exclude_writer))
    return counts


# ----------------------------------------------------------------------
# Key streams (shared per IndexSpec)
# ----------------------------------------------------------------------


def compute_keys(spec: IndexSpec, trace: SharingTrace) -> np.ndarray:
    """Vectorized mirror of :meth:`IndexSpec.key` over the whole trace.

    Takes the :class:`IndexSpec` rather than a scheme: the key stream is a
    property of the index group, which is exactly what lets the sweep
    planner compute it once and share it across every scheme in the group.
    """
    num_nodes = trace.num_nodes
    node_bits = spec.node_bits(num_nodes)
    node_mask = (1 << node_bits) - 1
    keys = np.zeros(len(trace), dtype=np.int64)
    if spec.use_pid:
        keys = (keys << node_bits) | (trace.writer & node_mask)
    if spec.pc_bits:
        keys = (keys << spec.pc_bits) | (trace.pc & ((1 << spec.pc_bits) - 1))
    if spec.use_dir:
        keys = (keys << node_bits) | (trace.home & node_mask)
    if spec.addr_bits:
        keys = (keys << spec.addr_bits) | (trace.block & ((1 << spec.addr_bits) - 1))
    return keys


# ----------------------------------------------------------------------
# Bitmap-history schemes
# ----------------------------------------------------------------------


def _bitmap_window(scheme: Scheme) -> int:
    """History slots a bitmap scheme actually reads.

    Overlap-last keeps two bitmaps regardless of nominal depth.
    """
    return 2 if scheme.function == "overlap" else scheme.depth


def _feedback_stream(
    mode: UpdateMode, trace: SharingTrace, keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, str]:
    """Return (feedback keys, values, delivery times, searchsorted side)."""
    length = len(trace)
    if mode is UpdateMode.DIRECT:
        selector = trace.has_inval
        return keys[selector], trace.inval[selector], np.nonzero(selector)[0], "right"
    if mode is UpdateMode.FORWARDED:
        selector = trace.close < length
        return keys[selector], trace.truth[selector], trace.close[selector], "right"
    if mode is UpdateMode.ORDERED:
        return keys, trace.truth, np.arange(length, dtype=np.int64), "left"
    raise AssertionError(f"unhandled update mode {mode}")  # pragma: no cover


class _BitmapPass:
    """The shared per-(key stream, update mode) trace pass.

    Sorts the mode's feedback stream into composite ``(key, time)`` order,
    locates every prediction's history window with two ``searchsorted``
    calls, and gathers up to ``window`` most-recent feedback bitmaps per
    event.  Everything here is independent of the prediction function and
    of any depth ``<= window``: slot *s* of :attr:`gathered` is the
    *(s+1)*-th most recent feedback (zero-filled outside the window), so a
    scheme of depth ``d`` simply reduces over the first ``d`` slots.  That
    is the whole shared-pass trick -- one sort and one gather score an
    entire batch of bitmap schemes.
    """

    __slots__ = ("length", "layout", "available", "gathered")

    def __init__(
        self, trace: SharingTrace, keys: np.ndarray, mode: UpdateMode, window: int
    ) -> None:
        length = len(trace)
        layout = trace.layout
        fb_keys, fb_values, fb_times, side = _feedback_stream(mode, trace, keys)

        # Composite (key, time) ordering.  time <= length, so (length + 1)
        # keeps keys in distinct, non-overlapping ranges.
        stride = np.int64(length + 1)
        fb_composite = fb_keys * stride + fb_times
        order = np.argsort(fb_composite, kind="stable")
        fb_composite = fb_composite[order]
        fb_values = fb_values[order].astype(layout.dtype)

        use_composite = keys * stride + np.arange(length, dtype=np.int64)
        positions = np.searchsorted(fb_composite, use_composite, side=side)
        group_starts = np.searchsorted(fb_composite, keys * stride, side="left")

        self.length = length
        self.layout = layout
        #: feedback values already delivered to each event's entry
        self.available = positions - group_starts
        self.gathered = layout.gather_zeros(window, length)
        for slot in range(1, window + 1):
            indices = positions - slot
            in_window = indices >= group_starts
            self.gathered[slot - 1, in_window] = fb_values[indices[in_window]]


def _reduce_bitmap(
    function: str, window: int, shared: _BitmapPass, num_nodes: int
) -> np.ndarray:
    """Fold one scheme's prediction function over a shared bitmap pass.

    ``window`` is the scheme's own slot count and may be smaller than the
    pass's gather width (the planner gathers once at the batch maximum).
    """
    length = shared.length
    layout = shared.layout
    available = shared.available
    gathered = shared.gathered
    if function in ("union", "last"):
        predictions = layout.zeros(length)
        for slot in range(window):
            predictions |= gathered[slot]
    elif function == "inter":
        predictions = layout.full(length)
        for slot in range(window):
            active = available > slot
            predictions[active] &= gathered[slot, active]
        predictions[available == 0] = 0
    else:  # overlap-last
        newest = gathered[0]
        previous = gathered[1]
        overlaps = layout.any_set(newest & previous)
        predictions = layout.select(
            available >= 2,
            layout.select(overlaps, newest, layout.zeros(length)),
            newest,  # 0 or 1 bitmaps stored: predict what is there (0 if none)
        )
    return predictions


# ----------------------------------------------------------------------
# Per-event families (PAs and arbitrary prediction functions)
# ----------------------------------------------------------------------


def _predict_kernel(scheme: Scheme, trace: SharingTrace, keys: np.ndarray) -> np.ndarray:
    """Per-event evaluation via the active kernel backend.

    Same update timing as the reference evaluator by construction (every
    backend is held to :class:`~repro.core.kernel.PredictorKernel` by the
    conformance suite), but keyed by the vectorized key stream and
    producing the raw prediction array so scoring/masking stay shared with
    the fast paths.
    """
    return kernel_predict(scheme, trace, keys)


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------


def _popcount_array(values: np.ndarray) -> np.ndarray:
    """Population count of a uint32 array via the 16-bit lookup table."""
    low = POPCOUNT16[values & np.uint32(0xFFFF)]
    high = POPCOUNT16[values >> np.uint32(16)]
    return low.astype(np.int64) + high.astype(np.int64)


def _merge_quad(counts: ConfusionCounts, quad: Tuple[int, int, int, int]) -> None:
    """Fold a ``(tp, fp, fn, tn)`` quad into a counts accumulator."""
    counts.true_positive += quad[0]
    counts.false_positive += quad[1]
    counts.false_negative += quad[2]
    counts.true_negative += quad[3]


def _score(predictions: np.ndarray, trace: SharingTrace, counts: ConfusionCounts) -> None:
    """Score an already-masked prediction column (delegates to the one
    normative scorer in :mod:`repro.core.kernel_backends`)."""
    _merge_quad(counts, score_predictions(predictions, trace, exclude_writer=False))


def evaluate_scheme_fast_multi(
    scheme: Scheme, traces, exclude_writer: bool = True
) -> ConfusionCounts:
    """Evaluate one scheme across several traces (fresh state per trace)."""
    counts = ConfusionCounts()
    for trace in traces:
        evaluate_scheme_fast(scheme, trace, exclude_writer=exclude_writer, counts=counts)
    return counts
