"""Fast trace evaluation: numpy passes instead of a per-event interpreter.

The design-space sweeps of paper Section 5.4 evaluate thousands of schemes
over every benchmark trace, so the per-scheme cost must be a handful of
vectorized passes.  The key observation is that for bitmap-history functions
(last/union/intersection/overlap-last) the history an entry holds at event
*i* is simply the last ``depth`` feedback values delivered to ``key[i]``
before the prediction -- and every update mode reduces to a different
*(delivery time, feedback value)* labelling of the same event stream:

==========  =======================  ==================  ==================
mode        feedback source          value               delivery time
==========  =======================  ==================  ==================
DIRECT      events with ``has_inval``  ``inval[j]``        ``j`` (inclusive)
FORWARDED   events with ``close<E``    ``truth[j]``        ``close[j]`` (inclusive)
ORDERED     all events                 ``truth[j]``        ``j`` (exclusive)
==========  =======================  ==================  ==================

"Inclusive" means a feedback delivered *at* event *i* is visible to event
*i*'s own prediction (direct update happens at the consulting event;
forwarded feedback is processed by the directory before the closing event
predicts); "exclusive" means it becomes visible only to later predictions.
Delivery times are unique within a mode (an event closes at most one epoch),
so one ``searchsorted`` over a composite ``(key, time)`` ordering recovers
each prediction's history window exactly.

The expensive parts of a sweep are *shared*, not per-scheme, and the module
is factored accordingly so :mod:`repro.core.plan` can reuse them:

* :func:`compute_keys` depends only on the :class:`IndexSpec`, so every
  scheme in an index group reads the same key stream;
* :class:`_BitmapPass` -- the feedback sort + ``searchsorted`` + history
  gather -- depends only on ``(keys, update mode, max window)``, so all
  depths and functions of a bitmap batch reduce over one pass via
  :func:`_reduce_bitmap`.

PAs entries carry counter state that depends on the full feedback sequence,
not a window, so they run the shared :class:`~repro.core.kernel.PredictorKernel`
sequentially over flat counter state (:class:`_PasOps`); arbitrary
:class:`~repro.core.functions.PredictionFunction` objects (the
confidence-gated extensions) take the same kernel with real entry objects.
Both therefore share the update-timing state machine with the reference
evaluator by construction.

``evaluate_scheme_fast`` is property-tested against the reference evaluator
in ``tests/core/test_vectorized_equivalence.py``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.indexing import IndexSpec
from repro.core.kernel import PredictorKernel
from repro.core.schemes import Scheme
from repro.core.update import UpdateMode
from repro.metrics.confusion import ConfusionCounts
from repro.trace.events import SharingTrace
from repro.util.bitmaps import POPCOUNT16

_BITMAP_FUNCTIONS = ("last", "union", "inter", "overlap")


def predict_scheme_fast(
    scheme: Scheme,
    trace: SharingTrace,
    exclude_writer: bool = True,
    keys: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The per-event prediction bitmaps ``scheme`` emits over ``trace``.

    One forwarding bitmap per event, in the trace's
    :class:`~repro.util.bitmaps.BitmapLayout` representation (``uint32``
    for paper-sized machines) -- the fast-path counterpart of
    :func:`repro.core.evaluator.predict_scheme`, and the array
    :func:`repro.forwarding.replay_traffic` consumes.

    ``keys`` optionally supplies a precomputed :func:`compute_keys` stream
    for ``scheme.index`` (the sweep planner's key cache); omitted, the keys
    are computed here.  Passing cached keys is bit-identical by definition
    -- the same function produced them.
    """
    if len(trace) == 0:
        return trace.layout.zeros(0)
    if keys is None:
        keys = compute_keys(scheme.index, trace)
    if scheme.function in _BITMAP_FUNCTIONS:
        window = _bitmap_window(scheme)
        shared = _BitmapPass(trace, keys, scheme.update, window)
        predictions = _reduce_bitmap(scheme.function, window, shared, trace.num_nodes)
    elif scheme.function == "pas":
        predictions = _predict_pas(scheme, trace, keys)
    else:
        # Generic sequential path: any PredictionFunction (e.g. the
        # confidence-gated extensions) evaluates correctly, just without
        # the vectorized speedup.
        predictions = _predict_sequential(scheme, trace, keys)

    if exclude_writer:
        predictions = predictions & ~trace.layout.writer_bits(trace.writer)
    return predictions


def evaluate_scheme_fast(
    scheme: Scheme,
    trace: SharingTrace,
    exclude_writer: bool = True,
    counts: Optional[ConfusionCounts] = None,
) -> ConfusionCounts:
    """Drop-in fast replacement for :func:`repro.core.evaluator.evaluate_scheme`."""
    if counts is None:
        counts = ConfusionCounts()
    if len(trace) == 0:
        return counts
    predictions = predict_scheme_fast(scheme, trace, exclude_writer=exclude_writer)
    _score(predictions, trace, counts)
    return counts


# ----------------------------------------------------------------------
# Key streams (shared per IndexSpec)
# ----------------------------------------------------------------------


def compute_keys(spec: IndexSpec, trace: SharingTrace) -> np.ndarray:
    """Vectorized mirror of :meth:`IndexSpec.key` over the whole trace.

    Takes the :class:`IndexSpec` rather than a scheme: the key stream is a
    property of the index group, which is exactly what lets the sweep
    planner compute it once and share it across every scheme in the group.
    """
    num_nodes = trace.num_nodes
    node_bits = spec.node_bits(num_nodes)
    node_mask = (1 << node_bits) - 1
    keys = np.zeros(len(trace), dtype=np.int64)
    if spec.use_pid:
        keys = (keys << node_bits) | (trace.writer & node_mask)
    if spec.pc_bits:
        keys = (keys << spec.pc_bits) | (trace.pc & ((1 << spec.pc_bits) - 1))
    if spec.use_dir:
        keys = (keys << node_bits) | (trace.home & node_mask)
    if spec.addr_bits:
        keys = (keys << spec.addr_bits) | (trace.block & ((1 << spec.addr_bits) - 1))
    return keys


# ----------------------------------------------------------------------
# Bitmap-history schemes
# ----------------------------------------------------------------------


def _bitmap_window(scheme: Scheme) -> int:
    """History slots a bitmap scheme actually reads.

    Overlap-last keeps two bitmaps regardless of nominal depth.
    """
    return 2 if scheme.function == "overlap" else scheme.depth


def _feedback_stream(
    mode: UpdateMode, trace: SharingTrace, keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, str]:
    """Return (feedback keys, values, delivery times, searchsorted side)."""
    length = len(trace)
    if mode is UpdateMode.DIRECT:
        selector = trace.has_inval
        return keys[selector], trace.inval[selector], np.nonzero(selector)[0], "right"
    if mode is UpdateMode.FORWARDED:
        selector = trace.close < length
        return keys[selector], trace.truth[selector], trace.close[selector], "right"
    if mode is UpdateMode.ORDERED:
        return keys, trace.truth, np.arange(length, dtype=np.int64), "left"
    raise AssertionError(f"unhandled update mode {mode}")  # pragma: no cover


class _BitmapPass:
    """The shared per-(key stream, update mode) trace pass.

    Sorts the mode's feedback stream into composite ``(key, time)`` order,
    locates every prediction's history window with two ``searchsorted``
    calls, and gathers up to ``window`` most-recent feedback bitmaps per
    event.  Everything here is independent of the prediction function and
    of any depth ``<= window``: slot *s* of :attr:`gathered` is the
    *(s+1)*-th most recent feedback (zero-filled outside the window), so a
    scheme of depth ``d`` simply reduces over the first ``d`` slots.  That
    is the whole shared-pass trick -- one sort and one gather score an
    entire batch of bitmap schemes.
    """

    __slots__ = ("length", "layout", "available", "gathered")

    def __init__(
        self, trace: SharingTrace, keys: np.ndarray, mode: UpdateMode, window: int
    ) -> None:
        length = len(trace)
        layout = trace.layout
        fb_keys, fb_values, fb_times, side = _feedback_stream(mode, trace, keys)

        # Composite (key, time) ordering.  time <= length, so (length + 1)
        # keeps keys in distinct, non-overlapping ranges.
        stride = np.int64(length + 1)
        fb_composite = fb_keys * stride + fb_times
        order = np.argsort(fb_composite, kind="stable")
        fb_composite = fb_composite[order]
        fb_values = fb_values[order].astype(layout.dtype)

        use_composite = keys * stride + np.arange(length, dtype=np.int64)
        positions = np.searchsorted(fb_composite, use_composite, side=side)
        group_starts = np.searchsorted(fb_composite, keys * stride, side="left")

        self.length = length
        self.layout = layout
        #: feedback values already delivered to each event's entry
        self.available = positions - group_starts
        self.gathered = layout.gather_zeros(window, length)
        for slot in range(1, window + 1):
            indices = positions - slot
            in_window = indices >= group_starts
            self.gathered[slot - 1, in_window] = fb_values[indices[in_window]]


def _reduce_bitmap(
    function: str, window: int, shared: _BitmapPass, num_nodes: int
) -> np.ndarray:
    """Fold one scheme's prediction function over a shared bitmap pass.

    ``window`` is the scheme's own slot count and may be smaller than the
    pass's gather width (the planner gathers once at the batch maximum).
    """
    length = shared.length
    layout = shared.layout
    available = shared.available
    gathered = shared.gathered
    if function in ("union", "last"):
        predictions = layout.zeros(length)
        for slot in range(window):
            predictions |= gathered[slot]
    elif function == "inter":
        predictions = layout.full(length)
        for slot in range(window):
            active = available > slot
            predictions[active] &= gathered[slot, active]
        predictions[available == 0] = 0
    else:  # overlap-last
        newest = gathered[0]
        previous = gathered[1]
        overlaps = layout.any_set(newest & previous)
        predictions = layout.select(
            available >= 2,
            layout.select(overlaps, newest, layout.zeros(length)),
            newest,  # 0 or 1 bitmaps stored: predict what is there (0 if none)
        )
    return predictions


# ----------------------------------------------------------------------
# PAs schemes (kernel-driven, but with tight flat-state entry ops)
# ----------------------------------------------------------------------


class _PasOps:
    """Flat-state PAs entry operations for the shared kernel.

    An entry is ``[histories list, counters bytearray]`` (one history int
    per node, one byte per 2-bit saturating counter) rather than a
    :class:`~repro.core.twolevel.PAsFunction` deque entry: this path is the
    cost ceiling of the whole design-space sweep, so entry state stays flat
    and the loops bind to locals.  The update timing itself comes from
    :class:`~repro.core.kernel.PredictorKernel` -- this class only defines
    what a PAs entry *is*.
    """

    __slots__ = ("num_nodes", "depth", "mask", "counters_per_entry", "node_range")

    def __init__(self, num_nodes: int, depth: int) -> None:
        self.num_nodes = num_nodes
        self.depth = depth
        self.mask = (1 << depth) - 1
        self.counters_per_entry = num_nodes << depth
        self.node_range = range(num_nodes)

    def new_entry(self) -> list:
        return [[0] * self.num_nodes, bytearray([1]) * self.counters_per_entry]

    def update(self, entry: list, feedback: int) -> None:
        histories, counters = entry
        depth = self.depth
        mask = self.mask
        for node in self.node_range:
            history = histories[node]
            slot = (node << depth) | history
            if (feedback >> node) & 1:
                if counters[slot] < 3:
                    counters[slot] += 1
                histories[node] = ((history << 1) | 1) & mask
            else:
                if counters[slot] > 0:
                    counters[slot] -= 1
                histories[node] = (history << 1) & mask

    def predict(self, entry: list) -> int:
        histories, counters = entry
        depth = self.depth
        prediction = 0
        for node in self.node_range:
            if counters[(node << depth) | histories[node]] >= 2:
                prediction |= 1 << node
        return prediction


def _predict_pas(scheme: Scheme, trace: SharingTrace, keys: np.ndarray) -> np.ndarray:
    """Sequential PAs evaluation producing the per-event prediction array."""
    kernel = PredictorKernel(scheme.update, _PasOps(trace.num_nodes, scheme.depth))
    return trace.layout.from_int_iter(
        kernel.run_trace(trace, keys.tolist()), count=len(trace)
    )


# ----------------------------------------------------------------------
# Generic sequential path (arbitrary prediction functions)
# ----------------------------------------------------------------------


def _predict_sequential(
    scheme: Scheme, trace: SharingTrace, keys: np.ndarray
) -> np.ndarray:
    """Per-event kernel evaluation with a real function object.

    Same update timing as the reference evaluator by construction (the two
    share :class:`PredictorKernel`), but keyed by the vectorized key stream
    and producing the raw prediction array so scoring/masking stay shared
    with the fast paths.
    """
    function = scheme.make_function(trace.num_nodes)
    kernel = PredictorKernel(scheme.update, function)
    return trace.layout.from_int_iter(
        kernel.run_trace(trace, keys.tolist()), count=len(trace)
    )


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------


def _popcount_array(values: np.ndarray) -> np.ndarray:
    """Population count of a uint32 array via the 16-bit lookup table."""
    low = POPCOUNT16[values & np.uint32(0xFFFF)]
    high = POPCOUNT16[values >> np.uint32(16)]
    return low.astype(np.int64) + high.astype(np.int64)


def _score(predictions: np.ndarray, trace: SharingTrace, counts: ConfusionCounts) -> None:
    layout = trace.layout
    full_mask = layout.mask
    truth = trace.truth
    true_positive = int(layout.popcount(predictions & truth).sum())
    false_positive = int(layout.popcount(predictions & ~truth & full_mask).sum())
    false_negative = int(layout.popcount(~predictions & truth & full_mask).sum())
    total = len(trace) * trace.num_nodes
    counts.true_positive += true_positive
    counts.false_positive += false_positive
    counts.false_negative += false_negative
    counts.true_negative += total - true_positive - false_positive - false_negative


def evaluate_scheme_fast_multi(
    scheme: Scheme, traces, exclude_writer: bool = True
) -> ConfusionCounts:
    """Evaluate one scheme across several traces (fresh state per trace)."""
    counts = ConfusionCounts()
    for trace in traces:
        evaluate_scheme_fast(scheme, trace, exclude_writer=exclude_writer, counts=counts)
    return counts
