"""Compiled per-event predictor loop: the ``native`` kernel backend.

The design-space sweeps of paper Section 5.4 evaluate thousands of schemes
per trace, and after the planner removed the redundant *shared* work
(PR 5), the remaining cost ceiling is the per-event Python interpreter loop
of the PAs and sequential families -- :class:`~repro.core.kernel.PredictorKernel`
driving entry ops one event at a time.  This module compiles that loop.

Two compiled engines, tried in preference order:

* **numba** -- when ``numba`` is importable, the loop is an ``@njit``
  transcription over the same flat arrays (no C toolchain needed);
* **cc** -- otherwise the embedded C source below is built once with the
  system C compiler into a cached shared library and driven via ``ctypes``.

Either way the compiled loop never sees Python objects: predictor keys and
block ids are densified to contiguous entry indices with ``np.unique``
(keys are known up front -- the whole trace is in hand), bitmaps travel as
bit-packed 64-bit word rows in the trace's
:class:`~repro.util.bitmaps.BitmapLayout` sense, and confusion counting is
fused ``popcount`` arithmetic over those words.  Entry state is flat
arrays: a ring buffer of feedback words per entry for the bitmap-history
family, per-(entry, node) history registers and 2-bit saturating counters
for PAs.

Semantics are *defined elsewhere*: the pure-Python
:class:`~repro.core.kernel.PredictorKernel` remains the normative oracle,
and this backend refuses to activate until it reproduces the oracle's
prediction stream bit for bit on the probe battery
(:func:`repro.core.kernel_backends.kernel_probe_fingerprint`) -- an engine
that fails the self-check is skipped, falling through to the next engine
and ultimately to the pure-Python backend.  The full proof is the kernel
conformance suite (``tests/core/test_kernel_conformance.py``).

Build artifacts land in ``REPRO_KERNEL_CACHE`` (default: a per-user
directory under the system temp dir), keyed by a hash of the C source, so
one compile serves every process -- including the parallel engine's
workers -- and editing the kernel source can never load a stale library.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.core.schemes import Scheme
from repro.core.update import UpdateMode
from repro.trace.events import SharingTrace
from repro.util.bitmaps import BitmapLayout

logger = logging.getLogger("repro.core.kernel_native")

#: update-mode codes shared by the C and numba engines
_MODE_CODES = {UpdateMode.DIRECT: 0, UpdateMode.FORWARDED: 1, UpdateMode.ORDERED: 2}

#: prediction-function codes shared by the C and numba engines
_FUNC_CODES = {"last": 0, "union": 1, "inter": 2, "overlap": 3, "pas": 4}

#: widest bitmap-history ring the native state layout supports (uint8 ring
#: cursors); deeper schemes fall back to the pure-Python kernel
MAX_NATIVE_WINDOW = 255

#: deepest PAs history the native layout supports (counters are indexed by
#: ``node << depth | history``; 2**12 counters/node is already far past the
#: paper's design space)
MAX_NATIVE_PAS_DEPTH = 12

C_SOURCE = r"""
#include <stdint.h>
#include <string.h>

#define MODE_DIRECT 0
#define MODE_FORWARDED 1
#define MODE_ORDERED 2

#define FUNC_LAST 0
#define FUNC_UNION 1
#define FUNC_INTER 2
#define FUNC_OVERLAP 3
#define FUNC_PAS 4

/* ---- bitmap-history family: ring buffer of feedback word-rows ---- */

static void bitmap_update(uint64_t *hist, uint8_t *ring_len, uint8_t *ring_pos,
                          int64_t entry, int32_t window, int64_t n_words,
                          const uint64_t *feedback)
{
    uint64_t *slot = hist + ((int64_t)entry * window + ring_pos[entry]) * n_words;
    memcpy(slot, feedback, (size_t)n_words * sizeof(uint64_t));
    ring_pos[entry] = (uint8_t)((ring_pos[entry] + 1) % window);
    if (ring_len[entry] < window)
        ring_len[entry] += 1;
}

static void bitmap_predict(const uint64_t *hist, const uint8_t *ring_len,
                           const uint8_t *ring_pos, int64_t entry,
                           int32_t function, int32_t window, int64_t n_words,
                           uint64_t *out)
{
    const uint64_t *base = hist + (int64_t)entry * window * n_words;
    int32_t len = ring_len[entry];
    int64_t w;
    int32_t slot;

    if (function == FUNC_OVERLAP) {
        /* window == 2: predict the newest bitmap only when it overlaps the
           one before it; with a single bitmap stored, predict it. */
        int32_t newest, prev;
        uint64_t overlap = 0;
        if (len == 0) {
            memset(out, 0, (size_t)n_words * sizeof(uint64_t));
            return;
        }
        newest = (ring_pos[entry] + window - 1) % window;
        if (len == 1) {
            memcpy(out, base + (int64_t)newest * n_words,
                   (size_t)n_words * sizeof(uint64_t));
            return;
        }
        prev = (ring_pos[entry] + window - 2) % window;
        for (w = 0; w < n_words; w++)
            overlap |= base[(int64_t)newest * n_words + w]
                     & base[(int64_t)prev * n_words + w];
        if (overlap)
            memcpy(out, base + (int64_t)newest * n_words,
                   (size_t)n_words * sizeof(uint64_t));
        else
            memset(out, 0, (size_t)n_words * sizeof(uint64_t));
        return;
    }

    if (function == FUNC_INTER) {
        if (len == 0) {
            memset(out, 0, (size_t)n_words * sizeof(uint64_t));
            return;
        }
        /* filled slots are always 0..len-1 (writes are sequential until the
           ring wraps, at which point every slot is live) */
        memcpy(out, base, (size_t)n_words * sizeof(uint64_t));
        for (slot = 1; slot < len; slot++)
            for (w = 0; w < n_words; w++)
                out[w] &= base[(int64_t)slot * n_words + w];
        return;
    }

    /* FUNC_LAST / FUNC_UNION: the OR of every stored bitmap (last is
       union at window 1) */
    memset(out, 0, (size_t)n_words * sizeof(uint64_t));
    for (slot = 0; slot < len; slot++)
        for (w = 0; w < n_words; w++)
            out[w] |= base[(int64_t)slot * n_words + w];
}

/* ---- PAs family: per-(entry, node) two-level adaptive state ---- */

static void pas_update(uint32_t *pas_hist, uint8_t *pas_counters, int64_t entry,
                       int64_t num_nodes, int32_t depth, const uint64_t *feedback)
{
    uint32_t *hist = pas_hist + entry * num_nodes;
    uint8_t *counters = pas_counters + entry * (num_nodes << depth);
    uint32_t mask = (uint32_t)((1u << depth) - 1u);
    int64_t node;
    for (node = 0; node < num_nodes; node++) {
        uint32_t history = hist[node];
        int64_t slot = ((int64_t)node << depth) | history;
        if ((feedback[node >> 6] >> (node & 63)) & 1u) {
            if (counters[slot] < 3)
                counters[slot] += 1;
            hist[node] = ((history << 1) | 1u) & mask;
        } else {
            if (counters[slot] > 0)
                counters[slot] -= 1;
            hist[node] = (history << 1) & mask;
        }
    }
}

static void pas_predict(const uint32_t *pas_hist, const uint8_t *pas_counters,
                        int64_t entry, int64_t num_nodes, int32_t depth,
                        int64_t n_words, uint64_t *out)
{
    const uint32_t *hist = pas_hist + entry * num_nodes;
    const uint8_t *counters = pas_counters + entry * (num_nodes << depth);
    int64_t node;
    memset(out, 0, (size_t)n_words * sizeof(uint64_t));
    for (node = 0; node < num_nodes; node++)
        if (counters[((int64_t)node << depth) | hist[node]] >= 2)
            out[node >> 6] |= 1ull << (node & 63);
}

/* ---- the per-event loop: PredictorKernel.run, compiled ---- */

int repro_kernel_run(int64_t n_events, int64_t n_words, int64_t num_nodes,
                     int32_t mode, int32_t function, int32_t window,
                     int32_t depth,
                     const int32_t *entries, const int32_t *blocks,
                     const uint8_t *has_inval,
                     const uint64_t *inval, const uint64_t *truth,
                     uint64_t *bitmap_hist, uint8_t *ring_len, uint8_t *ring_pos,
                     uint32_t *pas_hist, uint8_t *pas_counters,
                     int32_t *pending, uint64_t *pred)
{
    int64_t i;
    int is_pas = (function == FUNC_PAS);
    for (i = 0; i < n_events; i++) {
        int64_t entry = entries[i];
        if (mode == MODE_DIRECT) {
            if (has_inval[i]) {
                if (is_pas)
                    pas_update(pas_hist, pas_counters, entry, num_nodes, depth,
                               inval + i * n_words);
                else
                    bitmap_update(bitmap_hist, ring_len, ring_pos, entry,
                                  window, n_words, inval + i * n_words);
            }
        } else if (mode == MODE_FORWARDED) {
            int32_t block = blocks[i];
            if (has_inval[i]) {
                /* deliver the closed epoch's truth to the entry that
                   predicted it (the pending key for this block) */
                int32_t predictor = pending[block];
                if (predictor < 0)
                    return 1; /* inconsistent trace: inval with no open epoch */
                if (is_pas)
                    pas_update(pas_hist, pas_counters, predictor, num_nodes,
                               depth, inval + i * n_words);
                else
                    bitmap_update(bitmap_hist, ring_len, ring_pos, predictor,
                                  window, n_words, inval + i * n_words);
            }
            pending[block] = (int32_t)entry;
        }
        if (is_pas)
            pas_predict(pas_hist, pas_counters, entry, num_nodes, depth,
                        n_words, pred + i * n_words);
        else
            bitmap_predict(bitmap_hist, ring_len, ring_pos, entry, function,
                           window, n_words, pred + i * n_words);
        if (mode == MODE_ORDERED) {
            if (is_pas)
                pas_update(pas_hist, pas_counters, entry, num_nodes, depth,
                           truth + i * n_words);
            else
                bitmap_update(bitmap_hist, ring_len, ring_pos, entry, window,
                              n_words, truth + i * n_words);
        }
    }
    return 0;
}

/* ---- fused popcount confusion counting over packed word rows ---- */

void repro_kernel_score(int64_t n_events, int64_t n_words,
                        const uint64_t *pred, const uint64_t *truth,
                        const uint64_t *mask_words,
                        const int64_t *writers, int32_t exclude_writer,
                        int64_t *out)
{
    int64_t tp = 0, fp = 0, fn = 0;
    int64_t i, w;
    for (i = 0; i < n_events; i++) {
        const uint64_t *p_row = pred + i * n_words;
        const uint64_t *t_row = truth + i * n_words;
        int64_t writer = writers[i];
        for (w = 0; w < n_words; w++) {
            uint64_t m = mask_words[w];
            uint64_t p = p_row[w] & m;
            uint64_t t = t_row[w];
            if (exclude_writer && (writer >> 6) == w)
                p &= ~(1ull << (writer & 63));
            tp += __builtin_popcountll(p & t);
            fp += __builtin_popcountll(p & ~t & m);
            fn += __builtin_popcountll(~p & t & m);
        }
    }
    out[0] = tp;
    out[1] = fp;
    out[2] = fn;
}
"""

#: compilers tried in order when building the C engine
_COMPILERS = ("cc", "gcc", "clang")


def kernel_cache_dir() -> Path:
    """Where compiled kernel libraries live (override: ``REPRO_KERNEL_CACHE``)."""
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    tag = f"repro-kernel-{os.getuid()}" if hasattr(os, "getuid") else "repro-kernel"
    return Path(tempfile.gettempdir()) / tag


def _source_hash() -> str:
    return hashlib.sha256(C_SOURCE.encode("utf-8")).hexdigest()[:16]


def _compile_library() -> Path:
    """Compile :data:`C_SOURCE` into the cache dir, atomically, once.

    The library file is keyed by the source hash, so a cached build can
    never be stale, and concurrent builders (e.g. spawned workers racing on
    a cold cache) converge via ``os.replace``.
    """
    cache = kernel_cache_dir()
    cache.mkdir(parents=True, exist_ok=True)
    library = cache / f"libreprokernel-{_source_hash()}.so"
    if library.exists():
        return library
    source = cache / f"reprokernel-{_source_hash()}.c"
    source.write_text(C_SOURCE, encoding="utf-8")
    last_error: Optional[Exception] = None
    for compiler in _COMPILERS:
        scratch = cache / f".build-{os.getpid()}-{compiler}.so"
        command = [
            compiler, "-O2", "-shared", "-fPIC", "-std=c99",
            "-o", str(scratch), str(source),
        ]
        try:
            subprocess.run(
                command, check=True, capture_output=True, text=True, timeout=120
            )
        except (OSError, subprocess.SubprocessError) as error:
            last_error = error
            continue
        os.replace(scratch, library)
        return library
    raise RuntimeError(f"no working C compiler among {_COMPILERS}: {last_error}")


class _CEngine:
    """ctypes bindings over the compiled library (one instance per process)."""

    name = "cc"

    def __init__(self) -> None:
        self._lib = ctypes.CDLL(str(_compile_library()))
        self._lib.repro_kernel_run.restype = ctypes.c_int
        self._lib.repro_kernel_score.restype = None

    @staticmethod
    def _ptr(array: np.ndarray, ctype) -> ctypes.POINTER:
        return array.ctypes.data_as(ctypes.POINTER(ctype))

    def run(
        self,
        mode: int,
        function: int,
        window: int,
        depth: int,
        num_nodes: int,
        n_words: int,
        entries: np.ndarray,
        blocks: np.ndarray,
        has_inval: np.ndarray,
        inval: np.ndarray,
        truth: np.ndarray,
        state: "NativeState",
        pred: np.ndarray,
    ) -> int:
        return self._lib.repro_kernel_run(
            ctypes.c_int64(len(entries)),
            ctypes.c_int64(n_words),
            ctypes.c_int64(num_nodes),
            ctypes.c_int32(mode),
            ctypes.c_int32(function),
            ctypes.c_int32(window),
            ctypes.c_int32(depth),
            self._ptr(entries, ctypes.c_int32),
            self._ptr(blocks, ctypes.c_int32),
            self._ptr(has_inval, ctypes.c_uint8),
            self._ptr(inval, ctypes.c_uint64),
            self._ptr(truth, ctypes.c_uint64),
            self._ptr(state.bitmap_hist, ctypes.c_uint64),
            self._ptr(state.ring_len, ctypes.c_uint8),
            self._ptr(state.ring_pos, ctypes.c_uint8),
            self._ptr(state.pas_hist, ctypes.c_uint32),
            self._ptr(state.pas_counters, ctypes.c_uint8),
            self._ptr(state.pending, ctypes.c_int32),
            self._ptr(pred, ctypes.c_uint64),
        )

    def score(
        self,
        pred: np.ndarray,
        truth: np.ndarray,
        mask_words: np.ndarray,
        writers: np.ndarray,
        exclude_writer: bool,
        n_words: int,
    ) -> Tuple[int, int, int]:
        out = np.zeros(3, dtype=np.int64)
        self._lib.repro_kernel_score(
            ctypes.c_int64(len(writers)),
            ctypes.c_int64(n_words),
            self._ptr(pred, ctypes.c_uint64),
            self._ptr(truth, ctypes.c_uint64),
            self._ptr(mask_words, ctypes.c_uint64),
            self._ptr(writers, ctypes.c_int64),
            ctypes.c_int32(1 if exclude_writer else 0),
            self._ptr(out, ctypes.c_int64),
        )
        return int(out[0]), int(out[1]), int(out[2])


def _build_numba_engine():  # pragma: no cover - requires numba in the environment
    """The ``@njit`` transcription of the C loop, when numba is importable.

    A direct line-for-line port of ``repro_kernel_run`` over the same flat
    arrays; scoring stays on the shared numpy path (the njit loop is the
    part that buys the speedup).  Gated -- like the C engine -- behind the
    probe self-check in :meth:`NativeKernelBackend.available`, so a numba
    miscompile falls through to the C engine rather than shipping wrong
    predictions.
    """
    import numba

    @numba.njit(cache=False)
    def run(mode, function, window, depth, num_nodes, n_words,
            entries, blocks, has_inval, inval, truth,
            bitmap_hist, ring_len, ring_pos, pas_hist, pas_counters,
            pending, pred):
        is_pas = function == 4
        counters_per_entry = num_nodes << depth
        history_mask = (1 << depth) - 1
        for i in range(entries.shape[0]):
            entry = entries[i]
            for phase in range(3):
                # phase 0: pre-prediction update, phase 1: predict,
                # phase 2: post-prediction (ordered) update
                target = entry
                feedback_row = i
                source_inval = True
                if phase == 0:
                    if mode == 0:
                        if not has_inval[i]:
                            continue
                        target = entry
                        feedback_row = i
                        source_inval = True
                    elif mode == 1:
                        block = blocks[i]
                        if has_inval[i]:
                            predictor = pending[block]
                            if predictor < 0:
                                return 1
                            target = predictor
                            feedback_row = i
                            source_inval = True
                            pending[block] = entry
                        else:
                            pending[block] = entry
                            continue
                    else:
                        continue
                elif phase == 2:
                    if mode != 2:
                        continue
                    target = entry
                    feedback_row = i
                    source_inval = False
                if phase == 1:
                    # predict into pred[i]
                    for w in range(n_words):
                        pred[i, w] = 0
                    if is_pas:
                        for node in range(num_nodes):
                            slot = (entry * counters_per_entry
                                    + (node << depth) + pas_hist[entry * num_nodes + node])
                            if pas_counters[slot] >= 2:
                                pred[i, node >> 6] |= np.uint64(1) << np.uint64(node & 63)
                    else:
                        length = ring_len[entry]
                        base = entry * window
                        if function == 3:  # overlap
                            if length >= 1:
                                newest = (ring_pos[entry] + window - 1) % window
                                if length == 1:
                                    for w in range(n_words):
                                        pred[i, w] = bitmap_hist[base + newest, w]
                                else:
                                    prev = (ring_pos[entry] + window - 2) % window
                                    overlap = np.uint64(0)
                                    for w in range(n_words):
                                        overlap |= (bitmap_hist[base + newest, w]
                                                    & bitmap_hist[base + prev, w])
                                    if overlap != np.uint64(0):
                                        for w in range(n_words):
                                            pred[i, w] = bitmap_hist[base + newest, w]
                        elif function == 2:  # inter
                            if length >= 1:
                                for w in range(n_words):
                                    pred[i, w] = bitmap_hist[base, w]
                                for slot in range(1, length):
                                    for w in range(n_words):
                                        pred[i, w] &= bitmap_hist[base + slot, w]
                        else:  # last / union
                            for slot in range(length):
                                for w in range(n_words):
                                    pred[i, w] |= bitmap_hist[base + slot, w]
                    continue
                # apply the update selected by phase 0 / phase 2
                if is_pas:
                    for node in range(num_nodes):
                        history = pas_hist[target * num_nodes + node]
                        slot = target * counters_per_entry + (node << depth) + history
                        if source_inval:
                            bit = (inval[feedback_row, node >> 6]
                                   >> np.uint64(node & 63)) & np.uint64(1)
                        else:
                            bit = (truth[feedback_row, node >> 6]
                                   >> np.uint64(node & 63)) & np.uint64(1)
                        if bit != np.uint64(0):
                            if pas_counters[slot] < 3:
                                pas_counters[slot] += 1
                            pas_hist[target * num_nodes + node] = (
                                (history << 1) | 1
                            ) & history_mask
                        else:
                            if pas_counters[slot] > 0:
                                pas_counters[slot] -= 1
                            pas_hist[target * num_nodes + node] = (history << 1) & history_mask
                else:
                    slot = target * window + ring_pos[target]
                    for w in range(n_words):
                        if source_inval:
                            bitmap_hist[slot, w] = inval[feedback_row, w]
                        else:
                            bitmap_hist[slot, w] = truth[feedback_row, w]
                    ring_pos[target] = (ring_pos[target] + 1) % window
                    if ring_len[target] < window:
                        ring_len[target] += 1
        return 0

    class _NumbaEngine:
        name = "numba"

        def run(self, mode, function, window, depth, num_nodes, n_words,
                entries, blocks, has_inval, inval, truth, state, pred):
            return run(
                mode, function, window, depth, num_nodes, n_words,
                entries, blocks, has_inval, inval, truth,
                state.bitmap_hist.reshape(-1, n_words),
                state.ring_len, state.ring_pos,
                state.pas_hist, state.pas_counters, state.pending, pred,
            )

        score = None  # numba engine scores on the shared numpy path

    return _NumbaEngine()


class NativeState:
    """Flat per-run predictor state, allocated numpy-side.

    One instance per (scheme, trace) run -- predictor tables never carry
    over between traces.  Unused family arrays are zero-length (the C side
    only dereferences the family it was asked to run).
    """

    __slots__ = ("bitmap_hist", "ring_len", "ring_pos", "pas_hist",
                 "pas_counters", "pending")

    def __init__(
        self, is_pas: bool, n_entries: int, n_blocks: int,
        window: int, depth: int, num_nodes: int, n_words: int,
    ) -> None:
        if is_pas:
            self.bitmap_hist = np.zeros(0, dtype=np.uint64)
            self.ring_len = np.zeros(0, dtype=np.uint8)
            self.ring_pos = np.zeros(0, dtype=np.uint8)
            self.pas_hist = np.zeros(n_entries * num_nodes, dtype=np.uint32)
            # counters start weakly-not-shared (twolevel._COUNTER_INIT)
            self.pas_counters = np.full(
                n_entries * (num_nodes << depth), 1, dtype=np.uint8
            )
        else:
            self.bitmap_hist = np.zeros(n_entries * window * n_words, dtype=np.uint64)
            self.ring_len = np.zeros(n_entries, dtype=np.uint8)
            self.ring_pos = np.zeros(n_entries, dtype=np.uint8)
            self.pas_hist = np.zeros(0, dtype=np.uint32)
            self.pas_counters = np.zeros(0, dtype=np.uint8)
        self.pending = np.full(max(n_blocks, 1), -1, dtype=np.int32)


def _to_word_rows(column: np.ndarray, layout: BitmapLayout) -> np.ndarray:
    """A bitmap column as a C-contiguous ``(events, n_words)`` uint64 array."""
    if layout.packed:
        return np.ascontiguousarray(column, dtype=np.uint64)
    return np.ascontiguousarray(
        column.astype(np.uint64, copy=False).reshape(-1, 1)
    )


def _from_word_rows(words: np.ndarray, layout: BitmapLayout) -> np.ndarray:
    """Word rows back into the layout's canonical column representation."""
    if layout.packed:
        return words
    return words.reshape(-1).astype(layout.dtype)


class NativeKernelBackend:
    """The compiled kernel backend (registry name: ``native``).

    Covers the PAs and bitmap-history families at every machine width and
    all three update modes; arbitrary :class:`~repro.core.functions
    .PredictionFunction` objects (the confidence-gated extensions) are
    declined via :meth:`supports`, which the registry resolves as a
    per-scheme fall-through to the pure-Python backend.
    """

    name = "native"

    def __init__(self) -> None:
        self._engine = None
        self._checked = False

    # -- availability ---------------------------------------------------

    def available(self) -> bool:
        """Compile (or import) an engine and gate it behind the self-check.

        Engines are tried in preference order (numba, then the C build);
        the first whose probe fingerprint matches the pure-Python oracle
        wins.  The result is cached for the process lifetime.
        """
        if self._checked:
            return self._engine is not None
        self._checked = True
        from repro.core.kernel_backends import kernel_selfcheck

        for build in (self._try_numba, self._try_cc):
            engine = build()
            if engine is None:
                continue
            self._engine = engine
            try:
                if kernel_selfcheck(self):
                    logger.debug("native kernel engine %s passed self-check", engine.name)
                    return True
                logger.warning(
                    "native kernel engine %s failed the oracle self-check; skipping",
                    engine.name,
                )
            except Exception as error:  # noqa: BLE001 - any engine failure skips it
                logger.warning(
                    "native kernel engine %s raised during self-check (%s: %s); skipping",
                    engine.name, type(error).__name__, error,
                )
            self._engine = None
        return False

    def _try_numba(self):
        try:
            import numba  # noqa: F401
        except ImportError:
            return None
        try:  # pragma: no cover - requires numba in the environment
            return _build_numba_engine()
        except Exception as error:  # noqa: BLE001  # pragma: no cover
            logger.warning(
                "numba kernel engine failed to build (%s: %s); trying the C engine",
                type(error).__name__, error,
            )
            return None

    def _try_cc(self):
        try:
            return _CEngine()
        except (OSError, RuntimeError) as error:
            logger.warning(
                "C kernel engine unavailable (%s: %s)", type(error).__name__, error
            )
            return None

    @property
    def engine_name(self) -> Optional[str]:
        """Which compiled engine is active ("numba" or "cc"), or ``None``."""
        return self._engine.name if self._engine is not None else None

    # -- the backend contract -------------------------------------------

    def supports(self, scheme: Scheme) -> bool:
        function = scheme.function
        if function == "pas":
            return scheme.depth <= MAX_NATIVE_PAS_DEPTH
        if function in ("last", "union", "inter", "overlap"):
            return self._window(scheme) <= MAX_NATIVE_WINDOW
        return False

    @staticmethod
    def _window(scheme: Scheme) -> int:
        return 2 if scheme.function == "overlap" else scheme.depth

    def _run(
        self, scheme: Scheme, trace: SharingTrace, keys: np.ndarray
    ) -> Tuple[np.ndarray, NativeState]:
        """Drive the compiled loop; returns (prediction word rows, state)."""
        if self._engine is None and not self.available():
            raise RuntimeError(
                "native kernel backend is unavailable on this machine; "
                "route through repro.core.kernel_backends.kernel_predict, "
                "which falls back to the pure-Python backend"
            )
        layout = trace.layout
        n_words = layout.n_words
        is_pas = scheme.function == "pas"
        _, entries = np.unique(np.asarray(keys, dtype=np.int64), return_inverse=True)
        entries = np.ascontiguousarray(entries, dtype=np.int32)
        blocks_unique, blocks = np.unique(trace.block, return_inverse=True)
        blocks = np.ascontiguousarray(blocks, dtype=np.int32)
        has_inval = np.ascontiguousarray(trace.has_inval, dtype=np.uint8)
        inval = _to_word_rows(trace.inval, layout)
        truth = _to_word_rows(trace.truth, layout)
        state = NativeState(
            is_pas=is_pas,
            n_entries=int(entries.max()) + 1 if len(entries) else 0,
            n_blocks=len(blocks_unique),
            window=self._window(scheme),
            depth=scheme.depth,
            num_nodes=trace.num_nodes,
            n_words=n_words,
        )
        pred = np.zeros((len(trace), n_words), dtype=np.uint64)
        status = self._engine.run(
            _MODE_CODES[scheme.update],
            _FUNC_CODES[scheme.function],
            self._window(scheme),
            scheme.depth,
            trace.num_nodes,
            n_words,
            entries,
            blocks,
            has_inval,
            inval,
            truth,
            state,
            pred,
        )
        if status != 0:
            raise ValueError(
                "native kernel: has_inval set on an event whose block has no "
                "open epoch (inconsistent trace)"
            )
        return pred, state

    def predict(
        self, scheme: Scheme, trace: SharingTrace, keys: np.ndarray
    ) -> np.ndarray:
        """Raw (unmasked) per-event predictions in the trace's layout."""
        if len(trace) == 0:
            return trace.layout.zeros(0)
        pred, _state = self._run(scheme, trace, keys)
        return _from_word_rows(pred, trace.layout)

    def evaluate(
        self,
        scheme: Scheme,
        trace: SharingTrace,
        keys: np.ndarray,
        exclude_writer: bool,
    ) -> Tuple[int, int, int, int]:
        """Fused predict + popcount confusion counting, all compiled.

        Returns the ``(tp, fp, fn, tn)`` quad -- bit-identical to masking
        :meth:`predict` and scoring it on the shared numpy path, enforced
        by the conformance suite.
        """
        layout = trace.layout
        if len(trace) == 0:
            return 0, 0, 0, 0
        pred, _state = self._run(scheme, trace, keys)
        if self._engine.score is None:  # pragma: no cover - numba engine only
            from repro.core.kernel_backends import score_predictions

            return score_predictions(
                _from_word_rows(pred, layout), scheme, trace, exclude_writer
            )
        mask_words = np.ascontiguousarray(layout.mask_words, dtype=np.uint64)
        truth = _to_word_rows(trace.truth, layout)
        writers = np.ascontiguousarray(trace.writer, dtype=np.int64)
        tp, fp, fn = self._engine.score(
            pred, truth, mask_words, writers, exclude_writer, layout.n_words
        )
        total = len(trace) * trace.num_nodes
        return tp, fp, fn, total - tp - fp - fn
