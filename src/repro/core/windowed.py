"""Streamed scheme evaluation: the vectorized passes over event windows.

:mod:`repro.core.vectorized` assumes resident traces -- one global sort
of the feedback stream, one ``searchsorted`` over all events.  This
module runs the *same* math per :class:`~repro.trace.source.TraceChunk`,
carrying exactly the state a bitmap-history predictor actually needs
between windows, so a multi-gigabyte ``.rtrace`` evaluates at
O(chunk + carried state) memory while staying **bit-identical** to the
resident path (asserted over the golden fixtures by
``tests/trace/test_stream_equivalence.py``).

Carried-history construction
----------------------------

For a chunk covering absolute events ``[s, e)`` (length ``L``) and a
pass window ``W`` (the batch-max history depth), local feedback and
prediction times are expressed as ``absolute - s + W``, which leaves the
band ``[0, W)`` free *below* every real event.  Into that band we inject
each key's carried history -- its up-to-``W`` most recent feedback
values from previous chunks, the *k*-th most recent at time ``W-1-k``.
Then one :class:`~repro.core.vectorized._BitmapPass`-shaped sort +
``searchsorted`` + gather over (carried + local) feedback reproduces the
resident pass exactly, because

* slot *k* of the gather is the *(k+1)*-th most recent feedback, and the
  most recent ``min(W, true count)`` values are all present;
* ``available`` (carried, capped at ``W``, plus locally delivered) agrees
  with the true count on every comparison the reductions make
  (``> slot`` for ``slot < W``, ``== 0``, ``>= 2``): if the true count
  exceeds ``W``, both sides exceed every threshold; below ``W`` they are
  equal.  (Chunk-size invariance is property-tested in
  ``tests/trace/test_source.py``.)

After the pass, each key's new carried history is read off the sorted
feedback (the per-key tail of carried + locally delivered values), so
the state is self-renewing.  FORWARDED deliveries whose closing event
falls beyond the chunk wait in a pending queue keyed by absolute
delivery time; entries whose epoch never closes (``close == len``) are
simply never released -- the same ``close < length`` selector as the
resident pass.

Per-event families (PAs counters, confidence-gated functions) carry
their state in a :class:`~repro.core.kernel.KernelStream` -- the
pure-Python oracle's table fed window by window.  The compiled native
backend has no resumable entry points, so streamed evaluation always
uses the oracle loop for these families; the backend registry's
conformance contract (native == python bit-for-bit) is what keeps
streamed results identical under either ``REPRO_KERNEL`` setting.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.kernel import KernelStream, PasOps
from repro.core.schemes import Scheme
from repro.core.update import UpdateMode
from repro.core.vectorized import (
    _BITMAP_FUNCTIONS,
    _bitmap_window,
    _reduce_bitmap,
    compute_keys,
)
from repro.core.kernel_backends import score_predictions
from repro.metrics.confusion import ConfusionCounts
from repro.trace.events import SharingTrace
from repro.trace.source import TraceChunk, TraceSource, as_source
from repro.util.bitmaps import BitmapLayout


class _WindowView:
    """Duck-typed stand-in for ``_BitmapPass`` over one chunk's gather.

    Carries exactly the four attributes
    :func:`repro.core.vectorized._reduce_bitmap` reads, so the streamed
    path folds prediction functions through the *same* reduction code as
    the resident planner.
    """

    __slots__ = ("length", "layout", "available", "gathered")

    def __init__(self, length, layout, available, gathered):
        self.length = length
        self.layout = layout
        self.available = available
        self.gathered = gathered


class StreamedBitmapGroup:
    """Carried state for all bitmap schemes sharing one (index, mode).

    The streamed counterpart of the planner's shared pass: one feedback
    sort + gather per chunk at the group's maximum window serves every
    depth in the group (smaller windows reduce over a slot prefix).
    State between chunks is ``(keys, counts, values)`` -- for each key
    with history, its up-to-``window`` most recent feedback bitmaps --
    plus, for FORWARDED, the pending not-yet-closed deliveries.
    """

    def __init__(self, mode: UpdateMode, layout: BitmapLayout, window: int):
        self.mode = mode
        self.layout = layout
        self.window = window
        # carried per-key history: sorted unique keys, per-key feedback
        # counts saturated at `window`, and values[slot, key_pos] = the
        # (slot+1)-th most recent feedback bitmap for that key
        self._keys = np.zeros(0, dtype=np.int64)
        self._counts = np.zeros(0, dtype=np.int64)
        self._values = layout.gather_zeros(window, 0)
        # FORWARDED deliveries waiting for their closing event (absolute
        # delivery times); epochs that never close (time == len) simply
        # stay queued, matching the resident `close < length` selector
        self._pending_keys = np.zeros(0, dtype=np.int64)
        self._pending_times = np.zeros(0, dtype=np.int64)
        self._pending_values = layout.zeros(0)

    def _local_feedback(
        self, chunk: TraceChunk, keys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, str]:
        """This chunk's feedback stream in local time (absolute - s + W)."""
        window = self.window
        start = chunk.start
        end = chunk.end
        if self.mode is UpdateMode.DIRECT:
            selector = chunk.has_inval
            return (
                keys[selector],
                chunk.inval[selector],
                np.nonzero(selector)[0].astype(np.int64) + window,
                "right",
            )
        if self.mode is UpdateMode.ORDERED:
            return (
                keys,
                chunk.truth,
                np.arange(len(chunk), dtype=np.int64) + window,
                "left",
            )
        if self.mode is not UpdateMode.FORWARDED:  # pragma: no cover
            raise AssertionError(f"unhandled update mode {self.mode}")
        # FORWARDED: epochs opened in this chunk that close within it
        # deliver locally; ones closing later queue as pending.  Queued
        # epochs from earlier chunks whose close falls in [start, end)
        # are released now.
        closes = chunk.close
        local = closes < end
        parts_keys = [keys[local]]
        parts_values = [chunk.truth[local]]
        parts_times = [closes[local] - start + window]
        due = self._pending_times < end
        if due.any():
            parts_keys.append(self._pending_keys[due])
            parts_values.append(self._pending_values[due])
            parts_times.append(self._pending_times[due] - start + window)
            keep = ~due
            self._pending_keys = self._pending_keys[keep]
            self._pending_times = self._pending_times[keep]
            self._pending_values = self._pending_values[keep]
        queued = ~local
        if queued.any():
            self._pending_keys = np.concatenate(
                [self._pending_keys, keys[queued]]
            )
            self._pending_times = np.concatenate(
                [self._pending_times, closes[queued]]
            )
            self._pending_values = np.concatenate(
                [self._pending_values, chunk.truth[queued]]
            )
        return (
            np.concatenate(parts_keys),
            np.concatenate(parts_values),
            np.concatenate(parts_times),
            "right",
        )

    def feed(self, chunk: TraceChunk, keys: np.ndarray) -> _WindowView:
        """One windowed pass: gather each event's history, renew the carry."""
        layout = self.layout
        window = self.window
        length = len(chunk)
        fb_keys, fb_values, fb_times, side = self._local_feedback(chunk, keys)
        fb_values = layout.asarray(fb_values).astype(layout.dtype)

        # inject carried history below the chunk's time band: the k-th
        # most recent carried value for a key sits at time window-1-k,
        # strictly before every local time (>= window)
        inject_keys: List[np.ndarray] = [fb_keys]
        inject_values: List[np.ndarray] = [fb_values]
        inject_times: List[np.ndarray] = [fb_times]
        for slot in range(window):
            held = self._counts > slot
            if not held.any():
                break
            inject_keys.append(self._keys[held])
            inject_values.append(self._values[slot][held])
            inject_times.append(
                np.full(int(held.sum()), window - 1 - slot, dtype=np.int64)
            )
        if len(inject_keys) > 1:
            fb_keys = np.concatenate(inject_keys)
            fb_values = np.concatenate(inject_values)
            fb_times = np.concatenate(inject_times)

        # the _BitmapPass math in local time: times span [0, L + W), so
        # L + W + 1 separates keys into disjoint composite ranges
        stride = np.int64(length + window + 1)
        fb_composite = fb_keys * stride + fb_times
        order = np.argsort(fb_composite, kind="stable")
        fb_composite = fb_composite[order]
        fb_sorted_keys = fb_keys[order]
        fb_values = fb_values[order]

        use_times = np.arange(length, dtype=np.int64) + window
        use_composite = keys * stride + use_times
        positions = np.searchsorted(fb_composite, use_composite, side=side)
        group_starts = np.searchsorted(fb_composite, keys * stride, side="left")

        available = positions - group_starts
        gathered = layout.gather_zeros(window, length)
        for slot in range(1, window + 1):
            indices = positions - slot
            in_window = indices >= group_starts
            gathered[slot - 1, in_window] = fb_values[indices[in_window]]

        # renew the carry: each key's tail (newest `window` values) of the
        # sorted carried+delivered stream becomes the next chunk's history
        unique_keys, starts = np.unique(fb_sorted_keys, return_index=True)
        ends = np.concatenate(
            [starts[1:], np.asarray([len(fb_sorted_keys)], dtype=starts.dtype)]
        ) if len(starts) else starts
        new_values = layout.gather_zeros(window, len(unique_keys))
        for slot in range(window):
            tail = ends - 1 - slot
            held = tail >= starts
            if not held.any():
                break
            new_values[slot, held] = fb_values[tail[held]]
        self._keys = unique_keys
        self._counts = np.minimum(ends - starts, window)
        self._values = new_values

        return _WindowView(length, layout, available, gathered)


class _KernelSchemeState:
    """Carried per-event-family state: the oracle kernel's table."""

    def __init__(self, scheme: Scheme, num_nodes: int, layout: BitmapLayout):
        if scheme.function == "pas":
            ops = PasOps(num_nodes, scheme.depth)
        else:
            ops = scheme.make_function(num_nodes)
        self.stream = KernelStream(scheme.update, ops)
        self.layout = layout

    def feed(self, chunk: TraceChunk, keys: np.ndarray) -> np.ndarray:
        # drain the generator with list() before packing: np.fromiter
        # stops *at* the n-th yield, which would leave ORDERED mode's
        # post-yield update of the chunk's last event unexecuted -- lost
        # state the resident path only ever "loses" at end-of-trace
        values = list(self.stream.feed_chunk(chunk, np.asarray(keys).tolist()))
        return self.layout.from_int_iter(values, count=len(chunk))


class StreamedSweep:
    """Evaluate a batch of schemes over one chunk stream in a single pass.

    The streamed analogue of the sweep planner's per-trace batch: keys
    are computed once per index group per chunk (the chunk-local
    ``KeyCache``), bitmap schemes share one windowed pass per
    (index, mode) group at the batch-max window, and per-event schemes
    carry their kernel tables -- so adding schemes to a streamed sweep
    costs reductions, not passes.  Feed every chunk in order, then
    :meth:`finish`.
    """

    def __init__(
        self,
        schemes: Sequence[Scheme],
        num_nodes: int,
        layout: BitmapLayout,
        exclude_writer: bool = True,
    ):
        self.schemes = list(schemes)
        self.num_nodes = num_nodes
        self.layout = layout
        self.exclude_writer = exclude_writer
        self.counts = [ConfusionCounts() for _ in self.schemes]
        self._index_by_label: Dict[str, object] = {}
        self._bitmap_groups: Dict[Tuple[str, UpdateMode], StreamedBitmapGroup] = {}
        self._kernel_states: Dict[int, _KernelSchemeState] = {}
        group_windows: Dict[Tuple[str, UpdateMode], int] = {}
        for position, scheme in enumerate(self.schemes):
            self._index_by_label.setdefault(scheme.index.label, scheme.index)
            if scheme.function in _BITMAP_FUNCTIONS:
                group = (scheme.index.label, scheme.update)
                window = _bitmap_window(scheme)
                group_windows[group] = max(group_windows.get(group, 0), window)
            else:
                self._kernel_states[position] = _KernelSchemeState(
                    scheme, num_nodes, layout
                )
        for group, window in group_windows.items():
            self._bitmap_groups[group] = StreamedBitmapGroup(
                group[1], layout, window
            )

    def feed(self, chunk: TraceChunk) -> None:
        if len(chunk) == 0:
            return
        keys_by_label = {
            label: compute_keys(spec, chunk)
            for label, spec in self._index_by_label.items()
        }
        views: Dict[Tuple[str, UpdateMode], _WindowView] = {}
        for group, state in self._bitmap_groups.items():
            views[group] = state.feed(chunk, keys_by_label[group[0]])
        writer_mask = (
            ~self.layout.writer_bits(chunk.writer) if self.exclude_writer else None
        )
        for position, scheme in enumerate(self.schemes):
            if scheme.function in _BITMAP_FUNCTIONS:
                view = views[(scheme.index.label, scheme.update)]
                predictions = _reduce_bitmap(
                    scheme.function, _bitmap_window(scheme), view, self.num_nodes
                )
            else:
                predictions = self._kernel_states[position].feed(
                    chunk, keys_by_label[scheme.index.label]
                )
            if writer_mask is not None:
                predictions = predictions & writer_mask
            quad = score_predictions(predictions, chunk, exclude_writer=False)
            counts = self.counts[position]
            counts.true_positive += quad[0]
            counts.false_positive += quad[1]
            counts.false_negative += quad[2]
            counts.true_negative += quad[3]

    def finish(self) -> List[ConfusionCounts]:
        return self.counts


def evaluate_batch_streamed(
    schemes: Sequence[Scheme],
    source: Union[SharingTrace, TraceSource],
    exclude_writer: bool = True,
    chunk_events: Optional[int] = None,
) -> List[ConfusionCounts]:
    """Confusion counts for each scheme over one source, single chunk pass."""
    source = as_source(source)
    sweep = StreamedSweep(
        schemes, source.num_nodes, source.layout, exclude_writer=exclude_writer
    )
    for chunk in source.chunks(chunk_events):
        sweep.feed(chunk)
    return sweep.finish()


def evaluate_scheme_streamed(
    scheme: Scheme,
    source: Union[SharingTrace, TraceSource],
    exclude_writer: bool = True,
    counts: Optional[ConfusionCounts] = None,
    chunk_events: Optional[int] = None,
) -> ConfusionCounts:
    """Streamed drop-in for :func:`repro.core.vectorized.evaluate_scheme_fast`."""
    result = evaluate_batch_streamed(
        [scheme], source, exclude_writer=exclude_writer, chunk_events=chunk_events
    )[0]
    if counts is None:
        return result
    counts.true_positive += result.true_positive
    counts.false_positive += result.false_positive
    counts.false_negative += result.false_negative
    counts.true_negative += result.true_negative
    return counts


def predict_stream(
    scheme: Scheme,
    source: Union[SharingTrace, TraceSource],
    exclude_writer: bool = True,
    chunk_events: Optional[int] = None,
) -> Iterator[Tuple[TraceChunk, np.ndarray]]:
    """Yield ``(chunk, predictions)`` pairs for one scheme over a source.

    The streamed counterpart of
    :func:`repro.core.vectorized.predict_scheme_fast`: concatenating the
    prediction windows is bit-identical to the resident column.  This is
    what the traffic replayer consumes -- predictions never exist at full
    trace length.
    """
    source = as_source(source)
    layout = source.layout
    num_nodes = source.num_nodes
    if scheme.function in _BITMAP_FUNCTIONS:
        window = _bitmap_window(scheme)
        group = StreamedBitmapGroup(scheme.update, layout, window)
        kernel_state = None
    else:
        group = None
        kernel_state = _KernelSchemeState(scheme, num_nodes, layout)
    for chunk in source.chunks(chunk_events):
        if len(chunk) == 0:
            continue
        keys = compute_keys(scheme.index, chunk)
        if group is not None:
            view = group.feed(chunk, keys)
            predictions = _reduce_bitmap(
                scheme.function, _bitmap_window(scheme), view, num_nodes
            )
        else:
            predictions = kernel_state.feed(chunk, keys)
        if exclude_writer:
            predictions = predictions & ~layout.writer_bits(chunk.writer)
        yield chunk, predictions
