"""Predictor update timing (paper Section 3.4).

All history originates at invalidations: when a block changes writers, the
directory learns exactly which nodes read the previous version.  The three
update modes differ in *which entry* receives that reader set and *when*:

* ``DIRECT`` — the entry consulted by the current event absorbs whatever
  reader set the current invalidation reveals, before predicting.  For
  instruction-indexed predictors this may credit one writer with another
  writer's readers (the paper's Figure 3 heuristic).
* ``FORWARDED`` — the reader set of an epoch is routed to the entry that
  predicted that epoch, arriving when the epoch closes.  This requires
  last-writer (pid/pc) bookkeeping per block.
* ``ORDERED`` — idealized forwarded update: every feedback reaches its entry
  before the entry's next prediction, even when the epoch has not closed yet
  (information from the future; implementable only for schemes whose entries
  cannot be reused before their feedback returns).

For pure dir/addr indexing the three modes coincide, because an entry's next
use *is* the event that closes its epoch.  (Precisely: they coincide when
the entry-to-block mapping is injective.  Truncating the addr field until
concurrently-live blocks alias into one entry reintroduces a difference --
ordered update then sees a still-open neighbouring epoch's readers that
direct update never receives.  The paper states the equivalence for the
untruncated case.)
"""

from __future__ import annotations

from enum import Enum


class UpdateMode(Enum):
    """When invalidation feedback reaches a predictor entry."""

    DIRECT = "direct"
    FORWARDED = "forwarded"
    ORDERED = "ordered"

    @classmethod
    def parse(cls, text: str) -> "UpdateMode":
        """Parse the bracket suffix of the paper's notation.

        Accepts the abbreviations used in the paper's tables ("forward",
        "fwd", "perfect" appears once as a typo for ordered -- not accepted).
        """
        normalized = text.strip().lower()
        aliases = {
            "direct": cls.DIRECT,
            "forwarded": cls.FORWARDED,
            "forward": cls.FORWARDED,
            "fwd": cls.FORWARDED,
            "ordered": cls.ORDERED,
            "ordered-fwd": cls.ORDERED,
        }
        if normalized not in aliases:
            raise ValueError(f"unknown update mode {text!r}")
        return aliases[normalized]

    def __str__(self) -> str:
        return self.value
