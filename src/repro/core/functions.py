"""Prediction functions over bitmap history (paper Section 3.2).

Each function defines the state of one predictor entry, how that state turns
into a predicted sharing bitmap, and how invalidation feedback updates it.
The bitmap-history family (last / union / intersection / overlap-last) keeps
the most recent ``depth`` feedback bitmaps; two-level PAs prediction lives in
:mod:`repro.core.twolevel`.

Identities the paper relies on (and our tests assert):

* last == union(depth=1) == intersection(depth=1);
* union predictions always contain intersection predictions for the same
  history, so union sensitivity >= intersection sensitivity event by event.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Deque, List


class PredictionFunction(ABC):
    """Strategy object: state layout + prediction + update for one entry."""

    #: the function name used in scheme notation ("union", "inter", ...)
    name: str = ""

    def __init__(self, depth: int, num_nodes: int):
        if depth < 1:
            raise ValueError(f"history depth must be >= 1, got {depth}")
        self.depth = depth
        self.num_nodes = num_nodes

    @abstractmethod
    def new_entry(self) -> object:
        """Create the initial (empty-history) state for one table entry."""

    @abstractmethod
    def predict(self, entry: object) -> int:
        """Produce a predicted sharing bitmap from entry state."""

    @abstractmethod
    def update(self, entry: object, feedback: int) -> None:
        """Absorb one feedback bitmap (a true-reader set) into entry state."""

    @abstractmethod
    def entry_bits(self) -> int:
        """Storage cost of one entry in bits (paper Section 5.4 accounting)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(depth={self.depth}, num_nodes={self.num_nodes})"


class _BitmapHistoryFunction(PredictionFunction):
    """Shared machinery: entries are bounded deques of feedback bitmaps."""

    def new_entry(self) -> Deque[int]:
        return deque(maxlen=self.depth)

    def update(self, entry: Deque[int], feedback: int) -> None:
        entry.append(feedback)

    def entry_bits(self) -> int:
        return self.depth * self.num_nodes


class UnionFunction(_BitmapHistoryFunction):
    """Predict the union of the stored bitmaps.

    Union speculates on *any* reader seen recently: high sensitivity, lower
    PVP, and both move further in those directions as depth grows.
    """

    name = "union"

    def predict(self, entry: Deque[int]) -> int:
        prediction = 0
        for bitmap in entry:
            prediction |= bitmap
        return prediction


class IntersectionFunction(_BitmapHistoryFunction):
    """Predict the intersection of the stored bitmaps.

    Intersection speculates only on *stable* readers: the paper's top-PVP
    schemes are all deep-history intersections.  An entry with a single
    stored bitmap predicts that bitmap (so depth 1 equals last-prediction).
    """

    name = "inter"

    def predict(self, entry: Deque[int]) -> int:
        iterator = iter(entry)
        try:
            prediction = next(iterator)
        except StopIteration:
            return 0
        for bitmap in iterator:
            prediction &= bitmap
        return prediction


class LastFunction(UnionFunction):
    """Predict the most recent feedback bitmap (union/inter at depth 1)."""

    name = "last"

    def __init__(self, depth: int, num_nodes: int):
        if depth != 1:
            raise ValueError(f"last-prediction has depth 1 by definition, got {depth}")
        super().__init__(depth=1, num_nodes=num_nodes)


class OverlapLastFunction(_BitmapHistoryFunction):
    """Kaxiras & Goodman's guarded last-prediction (paper Section 3.5).

    Predict the most recent bitmap only when it overlaps the one before it;
    a reader set disjoint from its predecessor signals an unstable (e.g.
    migratory) relationship, so the predictor abstains.  The paper names
    this function ("overlap-last") but does not simulate it; we do.

    The entry keeps two bitmaps regardless of the requested depth, and with
    only one bitmap stored the function predicts it (nothing contradicts it
    yet).
    """

    name = "overlap"

    def __init__(self, depth: int, num_nodes: int):
        if depth != 1:
            raise ValueError(f"overlap-last has depth 1 by definition, got {depth}")
        super().__init__(depth=1, num_nodes=num_nodes)

    def new_entry(self) -> Deque[int]:
        return deque(maxlen=2)

    def predict(self, entry: Deque[int]) -> int:
        if not entry:
            return 0
        if len(entry) == 1:
            return entry[-1]
        last, previous = entry[-1], entry[-2]
        return last if last & previous else 0

    def entry_bits(self) -> int:
        return 2 * self.num_nodes


_FUNCTION_CLASSES = {
    "last": LastFunction,
    "union": UnionFunction,
    "inter": IntersectionFunction,
    "intersection": IntersectionFunction,
    "overlap": OverlapLastFunction,
    "overlap-last": OverlapLastFunction,
}


def make_function(name: str, depth: int, num_nodes: int) -> PredictionFunction:
    """Instantiate a prediction function by scheme-notation name.

    "pas" and the confidence-gated variants are imported lazily to avoid
    module cycles.
    """
    normalized = name.strip().lower()
    if normalized == "pas":
        from repro.core.twolevel import PAsFunction

        return PAsFunction(depth=depth, num_nodes=num_nodes)
    if normalized in ("cunion", "cinter"):
        from repro.core.confidence import (
            ConfidentIntersectionFunction,
            ConfidentUnionFunction,
        )

        gated = {"cunion": ConfidentUnionFunction, "cinter": ConfidentIntersectionFunction}
        return gated[normalized](depth=depth, num_nodes=num_nodes)
    if normalized not in _FUNCTION_CLASSES:
        known: List[str] = sorted(set(_FUNCTION_CLASSES)) + ["pas", "cunion", "cinter"]
        raise ValueError(f"unknown prediction function {name!r}; known: {known}")
    return _FUNCTION_CLASSES[normalized](depth=depth, num_nodes=num_nodes)
