"""Two-level adaptive (PAs) sharing prediction (paper Section 3.2).

Following Yeh & Patt, each predictor entry holds, *per potential reader*:

* a history register of ``depth`` bits recording whether that node read the
  block in each of the last ``depth`` epochs (newest bit in the LSB), and
* a pattern table of ``2**depth`` saturating 2-bit counters indexed by the
  history register.

The prediction for node *n* is the high bit of the counter its history
register selects; the aggregate over all nodes is the predicted bitmap.
Feedback updates both levels: the counter selected by the *old* history is
bumped toward the observed bit, then the bit is shifted into the register.

Cost per entry is ``N * depth`` history bits plus ``N * 2**depth`` 2-bit
counters, which is why the paper caps PAs index widths lower than the flat
schemes (Figure 8 uses a 12-bit maximum index).
"""

from __future__ import annotations

from typing import List

from repro.core.functions import PredictionFunction

#: Counters start weakly-not-shared.  Sharing prevalence is ~9%, so a fresh
#: counter should lean toward "not a reader" but flip after one observation
#: of sharing followed by another.
_COUNTER_INIT = 1
_COUNTER_MAX = 3


class PAsEntry:
    """Mutable state of one PAs table entry.

    ``histories[n]`` is node *n*'s history register; ``counters`` is a flat
    list indexed by ``(n << depth) | history`` -- flat indexing keeps the
    per-event inner loop cheap, and this loop dominates PAs evaluation time.
    """

    __slots__ = ("histories", "counters")

    def __init__(self, num_nodes: int, depth: int):
        self.histories: List[int] = [0] * num_nodes
        self.counters = bytearray([_COUNTER_INIT]) * (num_nodes << depth)


class PAsFunction(PredictionFunction):
    """Per-node two-level adaptive prediction over sharing bits."""

    name = "pas"

    def __init__(self, depth: int, num_nodes: int):
        super().__init__(depth=depth, num_nodes=num_nodes)
        self._history_mask = (1 << depth) - 1

    def new_entry(self) -> PAsEntry:
        return PAsEntry(self.num_nodes, self.depth)

    def predict(self, entry: PAsEntry) -> int:
        histories = entry.histories
        counters = entry.counters
        depth = self.depth
        prediction = 0
        for node in range(self.num_nodes):
            if counters[(node << depth) | histories[node]] >= 2:
                prediction |= 1 << node
        return prediction

    def update(self, entry: PAsEntry, feedback: int) -> None:
        histories = entry.histories
        counters = entry.counters
        depth = self.depth
        mask = self._history_mask
        for node in range(self.num_nodes):
            history = histories[node]
            slot = (node << depth) | history
            if (feedback >> node) & 1:
                if counters[slot] < _COUNTER_MAX:
                    counters[slot] += 1
                histories[node] = ((history << 1) | 1) & mask
            else:
                if counters[slot] > 0:
                    counters[slot] -= 1
                histories[node] = (history << 1) & mask

    def entry_bits(self) -> int:
        return self.num_nodes * self.depth + self.num_nodes * (1 << self.depth) * 2
