"""Predictor storage accounting (paper Section 5.4).

The paper reports scheme sizes as ``log2(bits)`` and sweeps designs up to
2^24 bits (2 MB machine-wide on 16 nodes).  The accounting here reproduces
its size column exactly:

* bitmap-history schemes: ``2**index_bits x depth x N`` bits
  (e.g. ``inter(pid+add6)4`` on 16 nodes: 2^10 entries x 64 bits = 2^16);
* PAs schemes: ``2**index_bits x (N x depth + N x 2**depth x 2)`` bits,
  counting both the history registers and the pattern-table counters as the
  paper says it does.

The storage-free baseline ``last()1`` is special: its single "entry" is the
bitmap the directory hardware already maintains, so the paper reports its
size as 0.  :func:`reported_size_log2_bits` mirrors that; the honest figure
is still available from :func:`storage_bits`.
"""

from __future__ import annotations

import math

from repro.core.schemes import Scheme


def entry_bits(scheme: Scheme, num_nodes: int = 16) -> int:
    """Bits of state in one predictor entry."""
    return scheme.make_function(num_nodes).entry_bits()


def storage_bits(scheme: Scheme, num_nodes: int = 16) -> int:
    """Total predictor storage in bits across the whole machine."""
    return (1 << scheme.index.index_bits(num_nodes)) * entry_bits(scheme, num_nodes)


def size_log2_bits(scheme: Scheme, num_nodes: int = 16) -> float:
    """``log2`` of total storage -- the paper's size column.

    Integral for bitmap schemes with power-of-two depth; fractional
    otherwise (e.g. depth 3, or PAs entries).
    """
    return math.log2(storage_bits(scheme, num_nodes))


def reported_size_log2_bits(scheme: Scheme, num_nodes: int = 16) -> float:
    """Size as the paper reports it.

    ``last()1`` (no indexing, depth 1) costs no *new* storage because the
    directory already holds the last system-wide sharing bitmap; the paper's
    Table 7 lists it as size 0.
    """
    if (
        scheme.function in ("last", "union", "inter")
        and scheme.depth == 1
        and scheme.index.index_bits(num_nodes) == 0
    ):
        return 0.0
    return size_log2_bits(scheme, num_nodes)


def fits_budget(scheme: Scheme, max_log2_bits: float, num_nodes: int = 16) -> bool:
    """True when the scheme's storage is within ``2**max_log2_bits`` bits."""
    return size_log2_bits(scheme, num_nodes) <= max_log2_bits + 1e-9
