"""Predictor access: indexing the global predictor (paper Section 3.1).

When a store creates new data, four pieces of information are available:
the writing processor (*pid*), the program counter of the store (*pc*), the
home directory of the block (*dir*), and the block address (*addr*).  Any
subset of these can index a single *global* predictor; which subset is used
determines both behaviour and where the predictor can physically live:

* pid in the index  -> the table can be sliced across the processors,
* dir in the index  -> the table can be sliced across the directories,
* neither           -> the predictor is necessarily centralized.

To keep a distributed implementation exactly equivalent to the global
abstraction, pid and dir are used whole (all ``log2 N`` bits or none), while
pc and addr may be truncated to any bit budget (paper Section 3.1).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Iterator, List


@dataclass(frozen=True)
class IndexSpec:
    """A point in the access axis: which fields index the predictor.

    Attributes:
        use_pid: include the full processor id in the index.
        pc_bits: number of low-order pc bits in the index (0 = unused).
        use_dir: include the full home-directory id in the index.
        addr_bits: number of low-order block-address bits (0 = unused).
    """

    use_pid: bool = False
    pc_bits: int = 0
    use_dir: bool = False
    addr_bits: int = 0

    def __post_init__(self) -> None:
        if self.pc_bits < 0:
            raise ValueError(f"pc_bits must be non-negative, got {self.pc_bits}")
        if self.addr_bits < 0:
            raise ValueError(f"addr_bits must be non-negative, got {self.addr_bits}")

    # ------------------------------------------------------------------
    # Table 1 classification
    # ------------------------------------------------------------------

    @property
    def class_number(self) -> int:
        """Case number in the paper's Table 1 (pid:8, pc:4, dir:2, addr:1)."""
        return (
            (8 if self.use_pid else 0)
            + (4 if self.pc_bits > 0 else 0)
            + (2 if self.use_dir else 0)
            + (1 if self.addr_bits > 0 else 0)
        )

    @property
    def distributable_at_processors(self) -> bool:
        """True when the table can be split one slice per processor."""
        return self.use_pid

    @property
    def distributable_at_directories(self) -> bool:
        """True when the table can be split one slice per directory."""
        return self.use_dir

    @property
    def centralized(self) -> bool:
        """True when neither pid nor dir indexing permits distribution."""
        return not (self.use_pid or self.use_dir)

    # ------------------------------------------------------------------
    # Key extraction
    # ------------------------------------------------------------------

    def node_bits(self, num_nodes: int) -> int:
        """Bits needed for a whole pid or dir field on an N-node system."""
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        return max(1, math.ceil(math.log2(num_nodes))) if num_nodes > 1 else 0

    def index_bits(self, num_nodes: int) -> int:
        """Total index width: the table has ``2**index_bits`` entries."""
        node_bits = self.node_bits(num_nodes)
        return (
            (node_bits if self.use_pid else 0)
            + self.pc_bits
            + (node_bits if self.use_dir else 0)
            + self.addr_bits
        )

    def key(self, pid: int, pc: int, home: int, block: int, num_nodes: int) -> int:
        """Compute the predictor-entry index for one event.

        Field order (pid, pc, dir, addr) is fixed so that keys are stable
        across the reference and vectorized evaluators.
        """
        node_bits = self.node_bits(num_nodes)
        value = 0
        if self.use_pid:
            value = (value << node_bits) | (pid & ((1 << node_bits) - 1))
        if self.pc_bits:
            value = (value << self.pc_bits) | (pc & ((1 << self.pc_bits) - 1))
        if self.use_dir:
            value = (value << node_bits) | (home & ((1 << node_bits) - 1))
        if self.addr_bits:
            value = (value << self.addr_bits) | (block & ((1 << self.addr_bits) - 1))
        return value

    @property
    def pure_address_based(self) -> bool:
        """True when only dir/addr index the predictor.

        For such schemes the entry used by an event is a function of the
        block alone, which makes direct, forwarded, and ordered update
        equivalent (paper Section 3.4).
        """
        return not self.use_pid and self.pc_bits == 0

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------

    @property
    def label(self) -> str:
        """The index part of the paper's scheme notation, e.g. ``pid+pc8+add6``."""
        parts: List[str] = []
        if self.use_pid:
            parts.append("pid")
        if self.pc_bits:
            parts.append(f"pc{self.pc_bits}")
        if self.use_dir:
            parts.append("dir")
        if self.addr_bits:
            parts.append(f"add{self.addr_bits}")
        return "+".join(parts)

    _FIELD_RE = re.compile(r"^(pid|dir|pc(\d+)|(?:add|addr)(\d+))$")

    @classmethod
    def parse(cls, text: str) -> "IndexSpec":
        """Parse an index label.

        Accepts the paper's spellings for the address field (``add``,
        ``addr``):

        >>> IndexSpec.parse("pid+add8") == IndexSpec(use_pid=True, addr_bits=8)
        True

        (The ``mem`` spelling borrowed from Lai & Falsafi's tables finished
        its deprecation cycle and is now rejected -- spell it ``add``.)
        """
        text = text.strip()
        if not text:
            return cls()
        use_pid = False
        use_dir = False
        pc_bits = 0
        addr_bits = 0
        for field in text.split("+"):
            field = field.strip()
            match = cls._FIELD_RE.match(field)
            if match is None:
                raise ValueError(f"unrecognized index field {field!r} in {text!r}")
            if field == "pid":
                use_pid = True
            elif field == "dir":
                use_dir = True
            elif match.group(2) is not None:
                pc_bits = int(match.group(2))
            else:
                addr_bits = int(match.group(3))
        return cls(use_pid=use_pid, pc_bits=pc_bits, use_dir=use_dir, addr_bits=addr_bits)


def table1_rows(num_nodes: int = 16) -> Iterator[dict]:
    """Enumerate the 16 indexing classes of the paper's Table 1.

    Yields one row per class with its distribution options, using a single
    pc/addr bit to stand in for "the field is present".
    """
    for case in range(16):
        spec = IndexSpec(
            use_pid=bool(case & 8),
            pc_bits=1 if case & 4 else 0,
            use_dir=bool(case & 2),
            addr_bits=1 if case & 1 else 0,
        )
        yield {
            "case": case,
            "pid": spec.use_pid,
            "pc": spec.pc_bits > 0,
            "dir": spec.use_dir,
            "addr": spec.addr_bits > 0,
            "at_processors": spec.distributable_at_processors,
            "at_directories": spec.distributable_at_directories,
            "centralized": spec.centralized,
        }
