"""Design-space enumeration (paper Section 5.4).

The paper sweeps "the space of predictor schemes up to an implementation
cost of 2^24 bits".  This module generates that space: every combination of
prediction function, index-field widths, and history depth whose storage
fits the budget.  Pid and dir are all-or-nothing (Section 3.1); pc and addr
widths step over an even grid.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.core.cost import fits_budget
from repro.core.indexing import IndexSpec
from repro.core.schemes import Scheme
from repro.core.update import UpdateMode

#: pc/addr widths used by the sweep; matches the granularity of the paper's
#: figure labels (even bit counts up to 16).
DEFAULT_FIELD_WIDTHS: Sequence[int] = (0, 2, 4, 6, 8, 10, 12, 14, 16)

#: history depths for bitmap functions (the paper's maximum is 4)
DEFAULT_DEPTHS: Sequence[int] = (1, 2, 3, 4)

#: PAs depths: entry cost is exponential in depth, so the sweep keeps these
#: small (the paper also evaluates PAs at depths 1, 2, and 4).
DEFAULT_PAS_DEPTHS: Sequence[int] = (1, 2, 4)


def enumerate_index_specs(
    field_widths: Sequence[int] = DEFAULT_FIELD_WIDTHS,
    max_index_bits: Optional[int] = None,
    num_nodes: int = 16,
) -> Iterator[IndexSpec]:
    """All index specs over the width grid, optionally capped in total width."""
    for use_pid in (False, True):
        for use_dir in (False, True):
            for pc_bits in field_widths:
                for addr_bits in field_widths:
                    spec = IndexSpec(
                        use_pid=use_pid,
                        pc_bits=pc_bits,
                        use_dir=use_dir,
                        addr_bits=addr_bits,
                    )
                    if (
                        max_index_bits is not None
                        and spec.index_bits(num_nodes) > max_index_bits
                    ):
                        continue
                    yield spec


def enumerate_schemes(
    max_log2_bits: float = 24.0,
    update: UpdateMode = UpdateMode.DIRECT,
    num_nodes: int = 16,
    field_widths: Sequence[int] = DEFAULT_FIELD_WIDTHS,
    depths: Sequence[int] = DEFAULT_DEPTHS,
    pas_depths: Sequence[int] = DEFAULT_PAS_DEPTHS,
    include_pas: bool = True,
) -> List[Scheme]:
    """The sweep space: every scheme within the storage budget.

    Depth-1 union and intersection are the same function (last-bitmap
    prediction), so only the union spelling is emitted at depth 1; the
    result contains no duplicate behaviours.
    """
    schemes: List[Scheme] = []
    for spec in enumerate_index_specs(field_widths, num_nodes=num_nodes):
        for function in ("union", "inter"):
            for depth in depths:
                if function == "inter" and depth == 1:
                    continue  # identical to union depth 1
                scheme = Scheme(function=function, index=spec, depth=depth, update=update)
                if fits_budget(scheme, max_log2_bits, num_nodes):
                    schemes.append(scheme)
        if include_pas:
            for depth in pas_depths:
                scheme = Scheme(function="pas", index=spec, depth=depth, update=update)
                if fits_budget(scheme, max_log2_bits, num_nodes):
                    schemes.append(scheme)
    return schemes
