"""Scheme naming: ``prediction-function(index)depth[update]`` (paper §3.5).

A :class:`Scheme` pins down all three taxonomy axes plus the history depth.
Examples from the paper, all of which round-trip through
:func:`parse_scheme`:

* ``last()1`` — the storage-free baseline (predict the system's last
  invalidation bitmap);
* ``inter(pid+pc8)2[direct]`` — Kaxiras & Goodman's instruction-based
  intersection predictor;
* ``union(dir+pid+add8)1[forward]`` — Lai & Falsafi's last-bitmap predictor
  at the directories (the legacy ``mem8`` spelling of the address field is
  no longer accepted -- spell it ``add8``);
* ``union(dir+add14)4`` — the paper's top-sensitivity scheme.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

from repro.core.functions import PredictionFunction, make_function
from repro.core.indexing import IndexSpec
from repro.core.update import UpdateMode

_SCHEME_RE = re.compile(
    r"^\s*(?P<function>[a-zA-Z-]+)\s*"
    r"\(\s*(?P<index>[^)]*)\)\s*"
    r"(?P<depth>\d+)?\s*"
    r"(?:\[\s*(?P<update>[a-zA-Z-]+)\s*\])?\s*$"
)


@dataclass(frozen=True)
class Scheme:
    """One point in the predictor design space."""

    function: str
    index: IndexSpec = field(default_factory=IndexSpec)
    depth: int = 1
    update: UpdateMode = UpdateMode.DIRECT

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError(f"depth must be >= 1, got {self.depth}")
        normalized = self.function.strip().lower()
        if normalized != self.function:
            object.__setattr__(self, "function", normalized)
        # Fail fast on unknown function names / invalid depths.
        self.make_function(num_nodes=16)

    def make_function(self, num_nodes: int) -> PredictionFunction:
        """Instantiate this scheme's prediction function for an N-node system."""
        return make_function(self.function, self.depth, num_nodes)

    def with_update(self, update: UpdateMode) -> "Scheme":
        """The same scheme under a different update mode."""
        return replace(self, update=update)

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """Paper notation without the update suffix, e.g. ``inter(pid+add6)4``."""
        return f"{self.function}({self.index.label}){self.depth}"

    @property
    def full_name(self) -> str:
        """Paper notation with the update suffix."""
        return f"{self.name}[{self.update.value}]"

    def __str__(self) -> str:
        return self.full_name


def parse_scheme(text: str, default_update: UpdateMode = UpdateMode.DIRECT) -> Scheme:
    """Parse the paper's scheme notation into a :class:`Scheme`.

    The depth defaults to 1 when omitted (the paper writes
    ``last(pid+add8)`` for a depth-1 scheme) and the update mode defaults to
    ``default_update`` when the bracket suffix is absent.
    """
    match = _SCHEME_RE.match(text)
    if match is None:
        raise ValueError(
            f"cannot parse scheme {text!r}; expected function(index)depth[update]"
        )
    depth_text = match.group("depth")
    update_text = match.group("update")
    return Scheme(
        function=match.group("function"),
        index=IndexSpec.parse(match.group("index")),
        depth=int(depth_text) if depth_text else 1,
        update=UpdateMode.parse(update_text) if update_text else default_update,
    )
