"""Reference (sequential, obviously-correct) scheme evaluation.

This evaluator walks a sharing trace event by event, maintaining a real
predictor table keyed by the scheme's index, and scores each prediction
against the epoch's eventual truth bitmap.  It is the semantic definition of
every update mode; the fast numpy engine in :mod:`repro.core.vectorized` is
property-tested against it.

The update-mode feedback-timing rules themselves live in one place,
:class:`repro.core.kernel.PredictorKernel` (see its docstring for the
normative statement); this module contributes the *reference* way of
producing keys -- one scalar :meth:`IndexSpec.key` call per event, fully
independent of the vectorized key computation -- and the scoring loop.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.core.kernel import PredictorKernel
from repro.core.schemes import Scheme
from repro.metrics.confusion import ConfusionCounts
from repro.trace.events import SharingEvent, SharingTrace
from repro.util.bitmaps import bitmap_mask


def _iter_predictions(
    scheme: Scheme, trace: SharingTrace, exclude_writer: bool
) -> Iterator[Tuple[SharingEvent, int]]:
    """Yield ``(event, prediction)`` for every event, in trace order.

    This generator *is* the reference semantics: it computes each event's
    key with the scalar :meth:`IndexSpec.key` (deliberately not sharing the
    vectorized key path, so the two stay cross-checkable) and drives the
    shared :class:`PredictorKernel` over a real
    :class:`~repro.core.functions.PredictionFunction` table, yielding the
    (optionally writer-masked) bitmap the predictor would hand the
    forwarding hardware at that event.  Scoring and traffic simulation both
    consume it, so they cannot drift apart.
    """
    num_nodes = trace.num_nodes
    function = scheme.make_function(num_nodes)
    index = scheme.index

    events = [trace[position] for position in range(len(trace))]
    keys = [
        index.key(event.writer, event.pc, event.home, event.block, num_nodes)
        for event in events
    ]
    kernel = PredictorKernel(scheme.update, function)
    stream = kernel.run(
        keys,
        [event.block for event in events],
        [event.has_inval for event in events],
        [event.inval for event in events],
        [event.truth for event in events],
    )
    for event, prediction in zip(events, stream):
        if exclude_writer:
            prediction &= ~(1 << event.writer)
        yield event, prediction


def predict_scheme(
    scheme: Scheme, trace: SharingTrace, exclude_writer: bool = True
) -> List[int]:
    """The per-event prediction bitmaps ``scheme`` emits over ``trace``.

    The reference-path counterpart of
    :func:`repro.core.vectorized.predict_scheme_fast`; feed the result to
    :func:`repro.forwarding.replay_traffic` to simulate the traffic.
    """
    return [
        prediction
        for _event, prediction in _iter_predictions(scheme, trace, exclude_writer)
    ]


def evaluate_scheme(
    scheme: Scheme,
    trace: SharingTrace,
    exclude_writer: bool = True,
    counts: Optional[ConfusionCounts] = None,
) -> ConfusionCounts:
    """Run ``scheme`` over ``trace`` and return accumulated confusion counts.

    Args:
        scheme: the predictor configuration (function, index, depth, update).
        trace: the sharing-event stream to predict.
        exclude_writer: mask the writer's own bit out of every prediction
            (forwarding data to their producer is meaningless).  The bit
            still counts as a decision, landing in the true-negative cell,
            so totals stay at ``len(trace) * num_nodes``.
        counts: optional accumulator to merge into (for multi-trace runs).

    Returns:
        The :class:`ConfusionCounts` accumulator.
    """
    if counts is None:
        counts = ConfusionCounts()
    decision_mask = bitmap_mask(trace.num_nodes)
    for event, prediction in _iter_predictions(scheme, trace, exclude_writer):
        counts.record(prediction, event.truth, decision_mask)
    return counts


def evaluate_scheme_multi(
    scheme: Scheme, traces, exclude_writer: bool = True
) -> ConfusionCounts:
    """Evaluate one scheme across several traces with a fresh table per trace.

    Predictor state never carries over between benchmarks (each benchmark is
    a separate machine run in the paper); the confusion counts accumulate.
    """
    counts = ConfusionCounts()
    for trace in traces:
        evaluate_scheme(scheme, trace, exclude_writer=exclude_writer, counts=counts)
    return counts
