"""Reference (sequential, obviously-correct) scheme evaluation.

This evaluator walks a sharing trace event by event, maintaining a real
predictor table keyed by the scheme's index, and scores each prediction
against the epoch's eventual truth bitmap.  It is the semantic definition of
every update mode; the fast numpy engine in :mod:`repro.core.vectorized` is
property-tested against it.

Update-mode timing implemented here (see DESIGN.md section 3):

* DIRECT: at each event, the reader set just invalidated (``inval``) enters
  the entry the event consults, then the entry predicts.  The first event on
  a block closes no epoch and performs no update.
* FORWARDED: when event *i* closes the epoch opened by event *j*, the
  feedback ``truth[j]`` is delivered to entry ``key[j]`` (the entry that
  made prediction *j*) at event *i*, before event *i*'s own prediction.
  Each event closes at most one epoch, so delivery order is unambiguous.
* ORDERED: feedback ``truth[i]`` reaches entry ``key[i]`` immediately after
  prediction *i* -- i.e. before the entry's next use, even if the epoch is
  still open then (the idealized scheme of paper Figure 4).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.schemes import Scheme
from repro.core.update import UpdateMode
from repro.metrics.confusion import ConfusionCounts
from repro.trace.events import SharingEvent, SharingTrace
from repro.util.bitmaps import bitmap_mask


def _iter_predictions(
    scheme: Scheme, trace: SharingTrace, exclude_writer: bool
) -> Iterator[Tuple[SharingEvent, int]]:
    """Yield ``(event, prediction)`` for every event, in trace order.

    This generator *is* the reference semantics: it maintains the real
    predictor table and applies each update mode's feedback timing, yielding
    the (optionally writer-masked) bitmap the predictor would hand the
    forwarding hardware at that event.  Scoring and traffic simulation both
    consume it, so they cannot drift apart.
    """
    num_nodes = trace.num_nodes
    function = scheme.make_function(num_nodes)
    index = scheme.index
    mode = scheme.update

    table: Dict[int, object] = {}

    def entry_for(key: int) -> object:
        entry = table.get(key)
        if entry is None:
            entry = function.new_entry()
            table[key] = entry
        return entry

    # Forwarded update: key under which each still-open epoch predicted, so
    # its truth can be routed there when the epoch closes.  Indexed by block
    # because the closing event identifies the epoch via its block.
    pending_key_by_block: Dict[int, int] = {}

    for position in range(len(trace)):
        event = trace[position]
        key = index.key(event.writer, event.pc, event.home, event.block, num_nodes)

        if mode is UpdateMode.DIRECT:
            if event.has_inval:
                function.update(entry_for(key), event.inval)
        elif mode is UpdateMode.FORWARDED:
            if event.has_inval:
                # This event closes its block's previous epoch; deliver that
                # epoch's truth (== this event's inval bitmap) to the entry
                # that predicted it.
                origin_key = pending_key_by_block[event.block]
                function.update(entry_for(origin_key), event.inval)
            pending_key_by_block[event.block] = key

        prediction = function.predict(entry_for(key))
        if exclude_writer:
            prediction &= ~(1 << event.writer)
        yield event, prediction

        if mode is UpdateMode.ORDERED:
            function.update(entry_for(key), event.truth)


def predict_scheme(
    scheme: Scheme, trace: SharingTrace, exclude_writer: bool = True
) -> List[int]:
    """The per-event prediction bitmaps ``scheme`` emits over ``trace``.

    The reference-path counterpart of
    :func:`repro.core.vectorized.predict_scheme_fast`; feed the result to
    :func:`repro.forwarding.replay_traffic` to simulate the traffic.
    """
    return [
        prediction
        for _event, prediction in _iter_predictions(scheme, trace, exclude_writer)
    ]


def evaluate_scheme(
    scheme: Scheme,
    trace: SharingTrace,
    exclude_writer: bool = True,
    counts: Optional[ConfusionCounts] = None,
) -> ConfusionCounts:
    """Run ``scheme`` over ``trace`` and return accumulated confusion counts.

    Args:
        scheme: the predictor configuration (function, index, depth, update).
        trace: the sharing-event stream to predict.
        exclude_writer: mask the writer's own bit out of every prediction
            (forwarding data to their producer is meaningless).  The bit
            still counts as a decision, landing in the true-negative cell,
            so totals stay at ``len(trace) * num_nodes``.
        counts: optional accumulator to merge into (for multi-trace runs).

    Returns:
        The :class:`ConfusionCounts` accumulator.
    """
    if counts is None:
        counts = ConfusionCounts()
    decision_mask = bitmap_mask(trace.num_nodes)
    for event, prediction in _iter_predictions(scheme, trace, exclude_writer):
        counts.record(prediction, event.truth, decision_mask)
    return counts


def evaluate_scheme_multi(
    scheme: Scheme, traces, exclude_writer: bool = True
) -> ConfusionCounts:
    """Evaluate one scheme across several traces with a fresh table per trace.

    Predictor state never carries over between benchmarks (each benchmark is
    a separate machine run in the paper); the confusion counts accumulate.
    """
    counts = ConfusionCounts()
    for trace in traces:
        evaluate_scheme(scheme, trace, exclude_writer=exclude_writer, counts=counts)
    return counts
