"""The one predictor state machine: update-mode feedback timing.

Every evaluator in the system used to re-implement the DIRECT / FORWARDED /
ORDERED timing rules (the reference interpreter, the vectorized engine's
generic sequential path, and its PAs fast path) -- three copies of the
subtlest semantics in the repo, and the likeliest place for drift.
:class:`PredictorKernel` is now the single owner of that state machine; the
callers differ only in how they produce per-event keys and what an *entry*
is.

The kernel is deliberately agnostic about entry contents.  It drives any
``ops`` object exposing the :class:`~repro.core.functions.PredictionFunction`
trio:

* ``ops.new_entry() -> entry`` -- fresh predictor-entry state;
* ``ops.update(entry, feedback_bitmap)`` -- fold one delivered reader set
  into the entry, in place;
* ``ops.predict(entry) -> int`` -- the raw (unmasked) prediction bitmap.

Timing semantics (the normative statement; DESIGN.md section 3):

* DIRECT: at each event, the reader set just invalidated (``inval``) enters
  the entry the event consults, then the entry predicts.  The first event
  on a block closes no epoch and performs no update.
* FORWARDED: when event *i* closes the epoch opened by event *j*, feedback
  ``truth[j]`` (== ``inval[i]``) is delivered to entry ``key[j]`` -- the
  entry that made prediction *j* -- at event *i*, before event *i*'s own
  prediction.  Each event closes at most one epoch, so delivery order is
  unambiguous.
* ORDERED: feedback ``truth[i]`` reaches entry ``key[i]`` immediately after
  prediction *i* -- before the entry's next use, even if the epoch is still
  open then (the idealized scheme of paper Figure 4).

The bitmap-history fast path in :mod:`repro.core.vectorized` does not run
the kernel event by event; instead it encodes these exact rules as a
*(delivery time, searchsorted side)* labelling and is property-tested
against kernel-driven evaluation, so the kernel stays the semantic oracle.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence

from repro.core.update import UpdateMode


class KernelStream:
    """Resumable predictor-kernel state: feed event windows, get predictions.

    The chunked twin of :meth:`PredictorKernel.run`: the table and the
    FORWARDED pending bookkeeping live on the instance, so a trace can be
    fed as any sequence of windows -- :meth:`feed` n times is
    bit-identical to one ``run`` over the concatenation.  Both the
    DIRECT/FORWARDED/ORDERED timing rules and the per-event loop body are
    the same code; ``PredictorKernel.run`` delegates here with a
    throwaway stream, so there is still exactly one copy of the timing
    semantics.  (FORWARDED needs no close indices at all -- delivery
    piggy-backs on the closing event's ``inval`` -- which is what makes
    the per-event families naturally chunk-feedable.)
    """

    __slots__ = ("mode", "ops", "_table", "_pending_key_by_block")

    def __init__(self, mode: UpdateMode, ops) -> None:
        self.mode = mode
        self.ops = ops
        self._table: Dict[int, object] = {}
        # Forwarded update: key under which each still-open epoch predicted,
        # so its truth can be routed there when the epoch closes.  Indexed
        # by block because the closing event identifies the epoch via its
        # block.
        self._pending_key_by_block: Dict[int, int] = {}

    def feed(
        self,
        keys: Sequence[int],
        blocks: Sequence[int],
        has_inval: Sequence[bool],
        inval: Sequence[int],
        truth: Sequence[int],
    ) -> Iterator[int]:
        """Yield the raw prediction bitmap for each event in this window."""
        mode = self.mode
        ops = self.ops
        new_entry = ops.new_entry
        update = ops.update
        predict = ops.predict
        table = self._table
        get = table.get
        pending_key_by_block = self._pending_key_by_block
        direct = mode is UpdateMode.DIRECT
        forwarded = mode is UpdateMode.FORWARDED
        ordered = mode is UpdateMode.ORDERED

        for position in range(len(keys)):
            key = keys[position]
            entry = get(key)
            if entry is None:
                entry = new_entry()
                table[key] = entry
            if direct:
                if has_inval[position]:
                    update(entry, inval[position])
            elif forwarded:
                block = blocks[position]
                if has_inval[position]:
                    # This event closes its block's previous epoch; deliver
                    # that epoch's truth (== this event's inval bitmap) to
                    # the entry that predicted it.  That entry always
                    # exists: it was created at its predicting event.
                    update(table[pending_key_by_block[block]], inval[position])
                pending_key_by_block[block] = key
            yield predict(entry)
            if ordered:
                update(entry, truth[position])

    def feed_chunk(self, chunk, keys: Sequence[int]) -> Iterator[int]:
        """:meth:`feed` with the columns pulled off a trace chunk."""
        return self.feed(
            keys,
            chunk.block.tolist(),
            chunk.has_inval.tolist(),
            chunk.inval_ints(),
            chunk.truth_ints(),
        )


class PredictorKernel:
    """Drive one predictor table over an event stream, one update mode.

    The kernel owns the table (``key -> entry``) and the FORWARDED pending
    bookkeeping; ``ops`` owns what an entry is.  One kernel instance is one
    trace run: state never carries over between traces (each benchmark is a
    separate machine run in the paper), so callers construct a fresh kernel
    per (scheme, trace) pair.
    """

    __slots__ = ("mode", "ops")

    def __init__(self, mode: UpdateMode, ops) -> None:
        self.mode = mode
        self.ops = ops

    def run(
        self,
        keys: Sequence[int],
        blocks: Sequence[int],
        has_inval: Sequence[bool],
        inval: Sequence[int],
        truth: Sequence[int],
    ) -> Iterator[int]:
        """Yield the raw prediction bitmap for every event, in trace order.

        All five columns are parallel, one element per event; ``keys`` is
        the per-event predictor index (scalar :meth:`IndexSpec.key` values
        or a shared vectorized key stream -- the kernel does not care).
        Predictions are *raw*: writer-bit masking is a scoring concern and
        stays with the callers.
        """
        return KernelStream(self.mode, self.ops).feed(
            keys, blocks, has_inval, inval, truth
        )

    def run_trace(self, trace, keys: Sequence[int]) -> Iterator[int]:
        """:meth:`run` with the event columns pulled off a ``SharingTrace``.

        Converts the numpy columns to plain Python lists first -- scalar
        indexing of int64 arrays inside a per-event loop costs more than
        the conversion.  The bitmap columns come through the trace's int
        view (``truth_ints`` / ``inval_ints``), so packed wide-machine
        traces feed the kernel the same arbitrary-precision Python ints as
        scalar ones -- the kernel itself is width-agnostic.
        """
        return self.run(
            keys,
            trace.block.tolist(),
            trace.has_inval.tolist(),
            trace.inval_ints(),
            trace.truth_ints(),
        )


class PasOps:
    """Flat-state PAs entry operations for the shared kernel.

    An entry is ``[histories list, counters bytearray]`` (one history int
    per node, one byte per 2-bit saturating counter) rather than a
    :class:`~repro.core.twolevel.PAsFunction` deque entry: this path is the
    cost ceiling of the whole design-space sweep, so entry state stays flat
    and the loops bind to locals.  The update timing itself comes from
    :class:`PredictorKernel` -- this class only defines what a PAs entry
    *is*.  It is also the pure-Python kernel backend's PAs implementation
    (:mod:`repro.core.kernel_backends`), which keeps it differentially
    tested against the :class:`~repro.core.twolevel.PAsFunction` oracle by
    the kernel conformance suite.
    """

    __slots__ = ("num_nodes", "depth", "mask", "counters_per_entry", "node_range")

    def __init__(self, num_nodes: int, depth: int) -> None:
        self.num_nodes = num_nodes
        self.depth = depth
        self.mask = (1 << depth) - 1
        self.counters_per_entry = num_nodes << depth
        self.node_range = range(num_nodes)

    def new_entry(self) -> list:
        return [[0] * self.num_nodes, bytearray([1]) * self.counters_per_entry]

    def update(self, entry: list, feedback: int) -> None:
        histories, counters = entry
        depth = self.depth
        mask = self.mask
        for node in self.node_range:
            history = histories[node]
            slot = (node << depth) | history
            if (feedback >> node) & 1:
                if counters[slot] < 3:
                    counters[slot] += 1
                histories[node] = ((history << 1) | 1) & mask
            else:
                if counters[slot] > 0:
                    counters[slot] -= 1
                histories[node] = (history << 1) & mask

    def predict(self, entry: list) -> int:
        histories, counters = entry
        depth = self.depth
        prediction = 0
        for node in self.node_range:
            if counters[(node << depth) | histories[node]] >= 2:
                prediction |= 1 << node
        return prediction
