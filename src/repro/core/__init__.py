"""The paper's primary contribution: the sharing-predictor design space.

Three orthogonal axes (paper Section 3):

* :mod:`repro.core.indexing` — *access*: which predictor entry each event
  consults (any subset of pid/pc/dir/addr, Table 1's 16 classes).
* :mod:`repro.core.functions` / :mod:`repro.core.twolevel` — *prediction*:
  how entry state becomes a predicted bitmap (last, union, intersection,
  overlap-last, two-level PAs).
* :mod:`repro.core.update` — *update*: when history reaches the entry
  (direct, forwarded, ordered).

A full configuration of the three axes is a :class:`~repro.core.schemes.Scheme`,
evaluated against a sharing trace by the reference evaluator
(:mod:`repro.core.evaluator`) or the fast engine (:mod:`repro.core.vectorized`).
"""

from repro.core.indexing import IndexSpec
from repro.core.schemes import Scheme, parse_scheme
from repro.core.update import UpdateMode
from repro.core.functions import (
    IntersectionFunction,
    LastFunction,
    OverlapLastFunction,
    UnionFunction,
    make_function,
)
from repro.core.twolevel import PAsFunction
from repro.core.evaluator import evaluate_scheme, predict_scheme
from repro.core.kernel import PredictorKernel
from repro.core.plan import KeyCache, SweepPlan, evaluate_plan
from repro.core.vectorized import compute_keys, evaluate_scheme_fast, predict_scheme_fast
from repro.core.space import enumerate_schemes

__all__ = [
    "IndexSpec",
    "Scheme",
    "parse_scheme",
    "UpdateMode",
    "LastFunction",
    "UnionFunction",
    "IntersectionFunction",
    "OverlapLastFunction",
    "PAsFunction",
    "make_function",
    "evaluate_scheme",
    "evaluate_scheme_fast",
    "predict_scheme",
    "predict_scheme_fast",
    "compute_keys",
    "PredictorKernel",
    "SweepPlan",
    "KeyCache",
    "evaluate_plan",
    "enumerate_schemes",
]
