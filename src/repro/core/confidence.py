"""Confidence-gated prediction (extension; paper cites Grunwald et al. [11]).

The paper imports its metrics from confidence-estimation work but its
simulated functions speculate on every history bit.  This extension adds
the natural next step: gate each node's predicted bit behind a saturating
2-bit confidence counter that tracks how often the base function's bit for
that node has been *correct*, and only forward when confidence is high.

Mechanically, each entry wraps a base bitmap function (union or
intersection) and keeps one counter per node.  On feedback delivery the
wrapper first scores the base function's current prediction against the
feedback (per node: counter up if the bits agree, down otherwise), then
lets the base function absorb the feedback.  Prediction is the base
bitmap masked by the confident nodes.

The intended effect mirrors Grunwald-style speculation control: abstain on
the bits history keeps getting wrong (migratory noise) while passing the
stable producer-consumer bits through -- higher PVP at some sensitivity
cost, tunable by the confidence threshold.
"""

from __future__ import annotations

from repro.core.functions import (
    IntersectionFunction,
    PredictionFunction,
    UnionFunction,
)

_COUNTER_INIT = 1
_COUNTER_MAX = 3
_CONFIDENT = 2


class _ConfidenceEntry:
    """Base-function entry plus one confidence counter per node."""

    __slots__ = ("base", "counters")

    def __init__(self, base: object, num_nodes: int):
        self.base = base
        self.counters = bytearray([_COUNTER_INIT]) * num_nodes


class _ConfidenceGatedFunction(PredictionFunction):
    """Wrap a bitmap-history function with per-node confidence gating."""

    #: set by subclasses
    base_class = None

    def __init__(self, depth: int, num_nodes: int):
        super().__init__(depth=depth, num_nodes=num_nodes)
        self._base = self.base_class(depth=depth, num_nodes=num_nodes)

    def new_entry(self) -> _ConfidenceEntry:
        return _ConfidenceEntry(self._base.new_entry(), self.num_nodes)

    def predict(self, entry: _ConfidenceEntry) -> int:
        raw = self._base.predict(entry.base)
        counters = entry.counters
        prediction = 0
        for node in range(self.num_nodes):
            if counters[node] >= _CONFIDENT and (raw >> node) & 1:
                prediction |= 1 << node
        return prediction

    def update(self, entry: _ConfidenceEntry, feedback: int) -> None:
        # Score the base function's *current* belief before absorbing the
        # feedback: would it have predicted this reader set?
        raw = self._base.predict(entry.base)
        counters = entry.counters
        for node in range(self.num_nodes):
            if ((raw >> node) & 1) == ((feedback >> node) & 1):
                if counters[node] < _COUNTER_MAX:
                    counters[node] += 1
            elif counters[node] > 0:
                counters[node] -= 1
        self._base.update(entry.base, feedback)

    def entry_bits(self) -> int:
        return self._base.entry_bits() + 2 * self.num_nodes


class ConfidentUnionFunction(_ConfidenceGatedFunction):
    """Union prediction gated by per-node confidence ('cunion')."""

    name = "cunion"
    base_class = UnionFunction


class ConfidentIntersectionFunction(_ConfidenceGatedFunction):
    """Intersection prediction gated by per-node confidence ('cinter')."""

    name = "cinter"
    base_class = IntersectionFunction
