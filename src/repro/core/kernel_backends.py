"""Kernel-backend registry: pure-Python oracle vs. compiled fast path.

The per-event predictor loop has exactly one semantic definition --
:class:`~repro.core.kernel.PredictorKernel` -- and, as of this module, more
than one *implementation*.  A kernel backend is an object that can run a
scheme's per-event loop over a trace and hand back the raw prediction
stream (or its fused confusion quad); the registry decides which
implementation a given evaluation uses, mirroring the evaluation-engine
registry in :mod:`repro.engine`:

* explicit :func:`set_kernel_backend` override (the CLI's ``--kernel``),
* else the ``REPRO_KERNEL`` environment variable,
* else ``auto``: the native backend when a compiler (numba or a C
  toolchain) is present and its build passes the oracle self-check,
  otherwise pure Python.

The contract every backend must honor -- and the conformance suite
(``tests/core/test_kernel_conformance.py``) enforces over every
*registered* backend, so a new backend is covered by registration alone:

* **The pure-Python backend is normative.**  Its predictions define
  correctness; a fast backend must reproduce them bit for bit on every
  trace, or decline the scheme via ``supports`` and let the registry fall
  through to Python (counted under ``kernel.fallbacks``).
* **Degradation is silent-safe.**  Requesting ``native`` on a machine with
  no compiler warns once and runs pure Python -- results cannot change,
  only speed.  Requesting an unregistered name is an error.
* Raw predictions are *unmasked* (writer-bit exclusion is a scoring
  concern) and delivered in the trace's
  :class:`~repro.util.bitmaps.BitmapLayout` representation.

Evaluations route through :func:`kernel_predict` / :func:`kernel_evaluate`,
which also record the chosen backend under ``kernel.backend.<name>``
telemetry -- including inside parallel-engine workers, whose counters merge
home with the rest of the worker snapshot.
"""

from __future__ import annotations

import hashlib
import logging
import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.kernel import PasOps, PredictorKernel
from repro.core.schemes import Scheme, parse_scheme
from repro.telemetry import get_telemetry
from repro.trace.events import SharingTrace
from repro.util.rng import DeterministicRng

logger = logging.getLogger("repro.core.kernel_backends")

#: registry resolution order under ``auto``
_AUTO_ORDER = ("native", "python")

#: the names ``REPRO_KERNEL`` / ``--kernel`` accept besides registered backends
AUTO = "auto"


def score_predictions(
    predictions: np.ndarray, trace: SharingTrace, exclude_writer: bool = True
) -> Tuple[int, int, int, int]:
    """Confusion quad ``(tp, fp, fn, tn)`` for a raw prediction column.

    The one normative scoring definition (popcount over the trace layout's
    words); the vectorized evaluator's scorer and the native backend's
    fused C scorer are both held to it by the conformance and golden
    suites.  ``exclude_writer`` masks each event's writer bit out of the
    predictions before counting, matching the evaluators' default.
    """
    layout = trace.layout
    if exclude_writer and len(trace):
        predictions = predictions & ~layout.writer_bits(trace.writer)
    full_mask = layout.mask
    truth = trace.truth
    true_positive = int(layout.popcount(predictions & truth).sum())
    false_positive = int(layout.popcount(predictions & ~truth & full_mask).sum())
    false_negative = int(layout.popcount(~predictions & truth & full_mask).sum())
    total = len(trace) * trace.num_nodes
    return (
        true_positive,
        false_positive,
        false_negative,
        total - true_positive - false_positive - false_negative,
    )


class PythonKernelBackend:
    """The normative backend: :class:`PredictorKernel` over entry objects.

    PAs schemes run on the flat-state :class:`~repro.core.kernel.PasOps`;
    everything else gets its real
    :class:`~repro.core.functions.PredictionFunction` object.  Supports
    every scheme by construction -- this is the implementation the others
    are defined against.
    """

    name = "python"

    def available(self) -> bool:
        return True

    def supports(self, scheme: Scheme) -> bool:
        return True

    def predict(
        self, scheme: Scheme, trace: SharingTrace, keys: np.ndarray
    ) -> np.ndarray:
        """Raw (unmasked) per-event predictions in the trace's layout."""
        if len(trace) == 0:
            return trace.layout.zeros(0)
        if scheme.function == "pas":
            ops = PasOps(trace.num_nodes, scheme.depth)
        else:
            ops = scheme.make_function(trace.num_nodes)
        kernel = PredictorKernel(scheme.update, ops)
        return trace.layout.from_int_iter(
            kernel.run_trace(trace, np.asarray(keys).tolist()), count=len(trace)
        )

    def evaluate(
        self,
        scheme: Scheme,
        trace: SharingTrace,
        keys: np.ndarray,
        exclude_writer: bool,
    ) -> Tuple[int, int, int, int]:
        """Predict then score on the shared numpy path."""
        return score_predictions(
            self.predict(scheme, trace, keys), trace, exclude_writer
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, object] = {}
_override: Optional[str] = None
_warned_unavailable: set = set()


def register_kernel_backend(backend) -> None:
    """Register a backend instance under ``backend.name``.

    Registration is the *entire* integration surface: the conformance
    suite parametrizes over :func:`kernel_backend_names`, so a newly
    registered backend is differentially tested against the Python oracle
    with no further wiring.
    """
    _REGISTRY[backend.name] = backend


def kernel_backend_names() -> List[str]:
    """Registered backend names, registration order."""
    return list(_REGISTRY)


def get_kernel_backend(name: str):
    """The registered backend instance for ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: {kernel_backend_names()}"
        ) from None


def set_kernel_backend(name: Optional[str]) -> Optional[str]:
    """Process-wide kernel selection override; returns the previous value.

    ``None`` clears the override (resolution falls back to ``REPRO_KERNEL``
    / ``auto``).  The parallel engine calls this in worker initializers so
    every worker runs the backend the parent resolved.
    """
    global _override
    if name is not None:
        normalized = name.strip().lower()
        if normalized != AUTO:
            get_kernel_backend(normalized)  # validate eagerly
        name = normalized
    previous = _override
    _override = name
    return previous


def resolve_kernel_backend(choice: Optional[str] = None):
    """The backend the next evaluation will use.

    Precedence: explicit ``choice`` > :func:`set_kernel_backend` override >
    ``REPRO_KERNEL`` env var > ``auto``.  ``auto`` picks the first
    *available* backend in preference order (native, then python).  Naming
    an unavailable backend degrades to pure Python with a single warning --
    never an error, never a semantic change.
    """
    name = choice or _override or os.environ.get("REPRO_KERNEL") or AUTO
    name = name.strip().lower()
    if name == AUTO:
        for candidate in _AUTO_ORDER:
            backend = _REGISTRY.get(candidate)
            if backend is not None and backend.available():
                return backend
        return _REGISTRY["python"]
    backend = get_kernel_backend(name)
    if not backend.available():
        if name not in _warned_unavailable:
            _warned_unavailable.add(name)
            logger.warning(
                "kernel backend %r is unavailable on this machine "
                "(no compiler, or its self-check failed); falling back to "
                "the pure-Python kernel -- results are identical, only slower",
                name,
            )
        return _REGISTRY["python"]
    return backend


def active_kernel_name() -> str:
    """The resolved backend's name (what telemetry and the CLI report)."""
    return resolve_kernel_backend().name


# ----------------------------------------------------------------------
# Routed evaluation entry points
# ----------------------------------------------------------------------


def _backend_for(scheme: Scheme):
    """Resolve, then fall through to Python for unsupported schemes."""
    backend = resolve_kernel_backend()
    telemetry = get_telemetry()
    if backend.name != "python" and not backend.supports(scheme):
        if telemetry.enabled:
            telemetry.count("kernel.fallbacks")
        backend = _REGISTRY["python"]
    if telemetry.enabled:
        telemetry.count(f"kernel.backend.{backend.name}")
    return backend


def kernel_predict(
    scheme: Scheme, trace: SharingTrace, keys: np.ndarray
) -> np.ndarray:
    """Raw per-event predictions via the active kernel backend."""
    return _backend_for(scheme).predict(scheme, trace, keys)


def kernel_evaluate(
    scheme: Scheme,
    trace: SharingTrace,
    keys: np.ndarray,
    exclude_writer: bool = True,
) -> Tuple[int, int, int, int]:
    """Fused predict-and-score via the active kernel backend.

    Returns the ``(tp, fp, fn, tn)`` quad; bit-identical across backends by
    the registry contract.
    """
    return _backend_for(scheme).evaluate(scheme, trace, keys, exclude_writer)


# ----------------------------------------------------------------------
# Probe battery: the self-check every fast backend must pass
# ----------------------------------------------------------------------

#: schemes the probe battery runs -- all three update modes, the four
#: bitmap functions, PAs, and a confidence-gated sequential scheme (which
#: native backends decline, exercising the fall-through path)
PROBE_SCHEMES: Tuple[str, ...] = (
    "last()1[direct]",
    "last(dir+add4)1[forwarded]",
    "union(pid+add4)3[ordered]",
    "union(dir+add6)2[forwarded]",
    "inter(pid+pc4)2[direct]",
    "inter(add5)3[forwarded]",
    "overlap(dir+add4)1[direct]",
    "overlap(pc3)1[ordered]",
    "pas(pid+add4)2[direct]",
    "pas(pc4)1[forwarded]",
    "pas(dir+add4)3[ordered]",
    "cunion(pid+add4)2[forwarded]",
)


def _probe_trace(num_nodes: int, num_events: int, seed: str) -> SharingTrace:
    """A deterministic structured trace (valid epochs, mixed sharing)."""
    rng = DeterministicRng(seed)
    num_blocks = max(4, num_events // 12)
    epochs = []
    for _ in range(num_events):
        writer = rng.integers(0, num_nodes)
        pc = rng.integers(1, 8)
        block = rng.integers(0, num_blocks)
        home = block % num_nodes
        truth = 0
        for node in range(num_nodes):
            if node != writer and rng.random() < 0.2:
                truth |= 1 << node
        epochs.append((writer, pc, home, block, truth))
    return SharingTrace.from_epochs(num_nodes, epochs, name=f"kernel-probe-{seed}")


def probe_traces() -> List[SharingTrace]:
    """The fixed probe traces: a paper-width machine and a packed-wide one."""
    return [
        _probe_trace(num_nodes=16, num_events=240, seed="kernel-probe-16"),
        _probe_trace(num_nodes=80, num_events=64, seed="kernel-probe-80"),
    ]


def kernel_probe_fingerprint(backend) -> str:
    """A 16-hex-digit digest of ``backend``'s probe prediction streams.

    Hashes the raw per-event prediction bitmaps of every probe scheme over
    every probe trace (schemes the backend declines run on the Python
    oracle, exactly as the routed entry points would).  Two backends agree
    on the fingerprint iff they agree bit for bit on the battery; the
    Python oracle's value is pinned in ``tests/golden/test_golden.py``.
    """
    from repro.core.vectorized import compute_keys

    python = _REGISTRY["python"]
    digest = hashlib.sha256()
    for trace in probe_traces():
        for scheme_text in PROBE_SCHEMES:
            scheme = parse_scheme(scheme_text)
            keys = compute_keys(scheme.index, trace)
            chosen = backend if backend.supports(scheme) else python
            predictions = chosen.predict(scheme, trace, keys)
            stream = ",".join(str(v) for v in trace.layout.to_int_list(predictions))
            record = f"{trace.name}|{scheme_text}|{stream}\n"
            digest.update(record.encode("ascii"))
    return digest.hexdigest()[:16]


def kernel_selfcheck(backend) -> bool:
    """Does ``backend`` reproduce the Python oracle's probe battery exactly?

    This is the gate :meth:`NativeKernelBackend.available` runs before a
    compiled engine is allowed to serve evaluations.
    """
    return kernel_probe_fingerprint(backend) == kernel_probe_fingerprint(
        _REGISTRY["python"]
    )


# ----------------------------------------------------------------------
# Default registrations
# ----------------------------------------------------------------------

register_kernel_backend(PythonKernelBackend())

from repro.core.kernel_native import NativeKernelBackend  # noqa: E402

register_kernel_backend(NativeKernelBackend())
